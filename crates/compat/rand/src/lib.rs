//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` 0.8 APIs the simulator and workload generator use
//! are reimplemented here: [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`]
//! (an xoshiro256++ generator — fast, deterministic, identical on every
//! platform), [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`], and
//! [`seq::SliceRandom::choose`].
//!
//! Determinism is a hard requirement of the reproduction (every simulation
//! is seeded and must replay bit-identically across hosts and thread
//! counts), so all sampling here is integer-exact and platform-independent.

#![deny(missing_docs)]

use std::ops::Range;

/// Core random-number-generation interface: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (via splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open). Panics on empty ranges.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // Compare against a 53-bit uniform in [0, 1): integer-exact.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Sample a value of a [`StandardDist`]-distributed type.
    fn gen<T: StandardDist>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait StandardDist: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDist for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardDist for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardDist for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] can sample from.
///
/// Implemented once, generically, over [`SampleUniform`] types — a single
/// generic impl (like real rand's) lets integer-literal inference flow from
/// the surrounding expression into the range's element type.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Sample from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, rng)
    }
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny bias on
                // astronomic spans is irrelevant for simulation seeding.
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        let x = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + x * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++), standing in for
    /// `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`rand::seq` subset).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly pick one element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(10i64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn choose_covers_slice() {
        let mut r = SmallRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*items.choose(&mut r).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
