//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (`lock()` returns the guard directly, no `Result`). Poisoning is handled
//! by taking the inner value anyway — a panic while holding the lock aborts
//! the experiment that owned it; the data (compiled benchmark images) is
//! immutable-once-built and safe to hand to other threads.

#![deny(missing_docs)]

use std::sync::{self, TryLockError};

/// A non-poisoning mutual-exclusion lock (API subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]; releases the lock on drop.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new lock around `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A non-poisoning reader-writer lock (API subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
