//! Offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace's benches use — [`Criterion`],
//! `benchmark_group`, `bench_function`, [`Bencher::iter`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros —
//! backed by a plain wall-clock measurement loop (warm-up, then timed
//! batches, median-of-samples reporting). No statistics engine, plots, or
//! HTML reports; numbers print to stdout as `name: time/iter`.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (accepted, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(400),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let report = run_bench(self, &mut f);
        println!("{id:<40} {report}");
        self
    }
}

/// A named group of benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let report = run_bench(self.criterion, &mut f);
        match self.throughput {
            Some(Throughput::Elements(n)) if n > 0 => {
                println!("{id:<40} {report} ({n} elem/iter)");
            }
            Some(Throughput::Bytes(n)) if n > 0 => {
                println!("{id:<40} {report} ({n} B/iter)");
            }
            _ => println!("{id:<40} {report}"),
        }
        self
    }

    /// Finish the group (separator line; kept for API compatibility).
    pub fn finish(self) {
        println!();
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the routine.
pub struct Bencher {
    /// Iterations the routine must run this sample.
    iters: u64,
    /// Measured elapsed time for those iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` for the sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Format a per-iteration duration in adaptive units.
fn fmt_per_iter(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:8.3}  s/iter", ns / 1_000_000_000.0)
    }
}

/// Warm up, pick an iteration count that fills a per-sample slice of the
/// measurement budget, take samples, report the median.
fn run_bench<F: FnMut(&mut Bencher)>(cfg: &Criterion, f: &mut F) -> String {
    // Warm-up & calibration: grow iters until one sample takes >= 1ms or
    // the warm-up budget is spent.
    let mut iters: u64 = 1;
    let warm_start = Instant::now();
    let per_iter_ns = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos().max(1) as u64;
        if b.elapsed >= Duration::from_millis(1) || warm_start.elapsed() >= cfg.warm_up_time {
            break ns as f64 / iters as f64;
        }
        iters = iters.saturating_mul(2);
    };
    // Aim each sample at measurement_time / sample_size.
    let slice_ns = (cfg.measurement_time.as_nanos() as f64 / cfg.sample_size as f64).max(1.0);
    let iters = ((slice_ns / per_iter_ns).ceil() as u64).max(1);
    let mut samples: Vec<f64> = (0..cfg.sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    fmt_per_iter(median)
}

/// Group benchmark functions under a name, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit a `main` running the given groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut ran = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.throughput(Throughput::Elements(1));
            group.bench_function("count", |b| b.iter(|| ran += 1));
            group.finish();
        }
        assert!(ran > 0, "routine must have been exercised");
    }

    #[test]
    fn units_format_sanely() {
        assert!(fmt_per_iter(12.0).contains("ns/iter"));
        assert!(fmt_per_iter(12_000.0).contains("µs/iter"));
        assert!(fmt_per_iter(12_000_000.0).contains("ms/iter"));
    }
}
