//! Offline stand-in for `rayon`.
//!
//! The workspace's sweeps are embarrassingly parallel — a few hundred
//! independent, multi-millisecond simulations — so the part of rayon they
//! need is the *shape* (`par_iter().map(..).collect()`, thread pools with
//! `install`), not work stealing. This shim executes indexed parallel
//! iterators over `std::thread::scope` with an atomic work-claiming cursor:
//! results land at their input index, so output order (and therefore every
//! downstream figure) is identical to sequential execution.
//!
//! Supported surface: [`prelude`] (slice `par_iter`, `Vec`/`Range`
//! `into_par_iter`, `map`, `collect` into `Vec`, `for_each`, `sum`),
//! [`ThreadPoolBuilder`] with `num_threads` + `build`/`build_global`, scoped
//! [`ThreadPool::install`], and [`current_num_threads`].

#![deny(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global worker-count override installed by [`ThreadPoolBuilder::build_global`]
/// (0 = use `std::thread::available_parallelism`).
static GLOBAL_NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`].
    static LOCAL_NUM_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel iterators will use on this thread.
pub fn current_num_threads() -> usize {
    let local = LOCAL_NUM_THREADS.with(|n| n.get());
    if local > 0 {
        return local;
    }
    let global = GLOBAL_NUM_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error type for pool construction (construction here cannot fail; the
/// type exists so call sites can keep rayon's `Result` handling).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count (0 = one per available core).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build a scoped pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.effective(),
        })
    }

    /// Install this configuration as the process-global default.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_NUM_THREADS.store(self.effective(), Ordering::Relaxed);
        Ok(())
    }

    fn effective(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// A handle fixing the worker count for closures run via [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Worker count of this pool.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool's worker count governing parallel iterators.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        LOCAL_NUM_THREADS.with(|n| {
            let prev = n.get();
            n.set(self.num_threads);
            let out = op();
            n.set(prev);
            out
        })
    }
}

/// Run `f(0..len)` across worker threads. Items are claimed through an
/// atomic cursor; each worker accumulates `(index, result)` pairs locally
/// and results are re-sorted to input order at the end. Worker panics
/// propagate on join.
fn run_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().clamp(1, len);
    if workers == 1 {
        return (0..len).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;
    let mut pairs: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// The traits users import; `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

/// An indexed source of parallel items (slice, vec, or range).
pub trait ParallelIterator: Sized {
    /// Item type produced.
    type Item: Send;

    /// Number of items.
    fn par_len(&self) -> usize;

    /// Produce the item at `i`. Called exactly once per index.
    fn par_get(&self, i: usize) -> Self::Item;

    /// Map each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Apply `f` to every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
        Self: Sync,
    {
        run_indexed(self.par_len(), |i| f(self.par_get(i)));
    }

    /// Collect into a container, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
        Self: Sync,
    {
        C::from_par_iter(self)
    }

    /// Sum the items in input order.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
        Self: Sync,
    {
        run_indexed(self.par_len(), |i| self.par_get(i))
            .into_iter()
            .sum()
    }
}

/// Marker for iterators with known length/indexing (all of ours are).
pub trait IndexedParallelIterator: ParallelIterator {}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a borrowing parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a reference).
    type Item: Send;
    /// Iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Parallel iterator over `&[T]`.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    fn par_len(&self) -> usize {
        self.slice.len()
    }
    fn par_get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}
impl<T: Sync> IndexedParallelIterator for SliceParIter<'_, T> {}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

/// Parallel iterator over an owned `Vec<T>` (items are cloned out by index;
/// owning moves out of a shared source would need unsafe bookkeeping the
/// sweeps don't warrant).
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Clone + Send + Sync> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn par_len(&self) -> usize {
        self.items.len()
    }
    fn par_get(&self, i: usize) -> T {
        self.items[i].clone()
    }
}
impl<T: Clone + Send + Sync> IndexedParallelIterator for VecParIter<T> {}

impl<T: Clone + Send + Sync> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeParIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeParIter {
    type Item = usize;
    fn par_len(&self) -> usize {
        self.len
    }
    fn par_get(&self, i: usize) -> usize {
        self.start + i
    }
}
impl IndexedParallelIterator for RangeParIter {}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;
    fn into_par_iter(self) -> RangeParIter {
        RangeParIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

/// Result of [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_get(&self, i: usize) -> R {
        (self.f)(self.base.par_get(i))
    }
}
impl<B, R, F> IndexedParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
}

/// Containers constructible from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Build the container, preserving input order.
    fn from_par_iter<I>(iter: I) -> Self
    where
        I: ParallelIterator<Item = T> + Sync;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I>(iter: I) -> Self
    where
        I: ParallelIterator<Item = T> + Sync,
    {
        run_indexed(iter.par_len(), |i| iter.par_get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_overrides_worker_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn range_and_owned_vec_sources() {
        let squares: Vec<usize> = (0..64usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[63], 63 * 63);
        let labels: Vec<String> = vec!["a".to_string(), "b".to_string()]
            .into_par_iter()
            .collect();
        assert_eq!(labels, ["a", "b"]);
    }

    #[test]
    fn sum_and_for_each() {
        let xs: Vec<u64> = (1..=100).collect();
        let total: u64 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(total, 5050);
        let hits = std::sync::atomic::AtomicUsize::new(0);
        xs.par_iter().for_each(|_| {
            hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(hits.into_inner(), 100);
    }

    #[test]
    fn single_item_and_empty() {
        let one: Vec<i32> = [5].par_iter().map(|&x| x + 1).collect();
        assert_eq!(one, [6]);
        let none: Vec<i32> = Vec::<i32>::new().par_iter().map(|&x| x).collect();
        assert!(none.is_empty());
    }
}
