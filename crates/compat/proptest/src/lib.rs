//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map` and
//! `boxed`, range / tuple / [`Just`] / [`any`] strategies,
//! `prop::collection::vec`, the [`prop_oneof!`] union macro, and the
//! [`proptest!`] test-harness macro with `prop_assert*` checks and
//! `#![proptest_config(..)]`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the assertion message and
//!   the case's RNG seed; re-running reproduces it exactly (generation is
//!   keyed on the test's name hash and case index, never on time).
//! * **No persistence files.** Failures are deterministic, so there is
//!   nothing to persist.

#![deny(missing_docs)]

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic generator state handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build from a seed (e.g. test-name hash mixed with case index).
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x6A09_E667_F3BC_C908,
        }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config with `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The value type produced.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generate a value, then use it to pick a follow-up strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn StrategyObj<Value = T>>);

/// Object-safe core of [`Strategy`] backing [`BoxedStrategy`].
trait StrategyObj {
    type Value;
    fn generate_obj(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> StrategyObj for S {
    type Value = S::Value;
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, O, F> Strategy for Map<B, F>
where
    B: Strategy,
    O: Debug,
    F: Fn(B::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, S, F> Strategy for FlatMap<B, F>
where
    B: Strategy,
    S: Strategy,
    F: Fn(B::Value) -> S,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Build from the alternatives; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy over the whole domain of `T` (`any::<T>()`).
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`](crate::collection::vec): an exact `usize` or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec-length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// FNV-1a hash of a test name, used to seed its RNG stream.
pub fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Assert inside a property; on failure the harness reports the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ..)` runs
/// `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    // With a config block.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::proptest!(@run config, $name, ($($arg in $strategy),+), $body);
            }
        )*
    };
    // Without a config block.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $crate::ProptestConfig::default();
                $crate::proptest!(@run config, $name, ($($arg in $strategy),+), $body);
            }
        )*
    };
    (@run $config:ident, $name:ident, ($($arg:ident in $strategy:expr),+), $body:block) => {
        let base = $crate::seed_of(concat!(module_path!(), "::", stringify!($name)));
        for case in 0..$config.cases {
            let mut rng = $crate::TestRng::from_seed(
                base ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
            $body
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        let s = (0u8..4, 10i32..20);
        for _ in 0..1000 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 4);
            assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::from_seed(2);
        let s = prop::collection::vec(0u64..100, 3..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
        let exact = prop::collection::vec(any::<bool>(), 4);
        assert_eq!(exact.generate(&mut rng).len(), 4);
    }

    #[test]
    fn oneof_hits_every_option() {
        let mut rng = TestRng::from_seed(3);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..300 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn generation_is_deterministic() {
        let s = prop::collection::vec((any::<u32>(), 0u8..8), 0..20);
        let a = s.generate(&mut TestRng::from_seed(9));
        let b = s.generate(&mut TestRng::from_seed(9));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: args bind, asserts fire, config is honored.
        #[test]
        fn macro_smoke(x in 0u32..50, ys in prop::collection::vec(0u8..10, 1..5)) {
            prop_assert!(x < 50);
            prop_assert_eq!(ys.iter().filter(|&&y| y < 10).count(), ys.len());
            prop_assert_ne!(ys.len(), 0);
        }
    }
}
