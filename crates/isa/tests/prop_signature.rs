//! Property tests: packed signature arithmetic must agree with a naive
//! per-counter model, and builder-produced instructions must always be
//! legal placements.

use proptest::prelude::*;
use vliw_isa::{
    InstrBuilder, MachineConfig, OpClass, Opcode, Operation, ResourceCaps, ResourceVec,
};

/// Naive reference: per-(cluster, class) counts as a plain array.
#[derive(Default, Clone)]
struct NaiveCounts([[u8; 4]; 8]);

impl NaiveCounts {
    fn bump(&mut self, cluster: u8, class: OpClass) {
        self.0[cluster as usize][class.index()] += 1;
    }
    fn sum(&self, other: &NaiveCounts) -> NaiveCounts {
        let mut out = NaiveCounts::default();
        for c in 0..8 {
            for k in 0..4 {
                out.0[c][k] = self.0[c][k] + other.0[c][k];
            }
        }
        out
    }
    fn exceeds(&self, m: &MachineConfig) -> bool {
        for c in 0..8u8 {
            for k in OpClass::ALL {
                let cap = if c < m.n_clusters {
                    m.class_capacity(c, k)
                } else {
                    0
                };
                if self.0[c as usize][k.index()] > cap {
                    return true;
                }
            }
        }
        false
    }
    fn cluster_over_issue(&self, m: &MachineConfig) -> bool {
        (0..m.n_clusters).any(|c| {
            self.0[c as usize].iter().map(|&x| x as u32).sum::<u32>()
                > u32::from(m.issue_per_cluster)
        })
    }
}

fn class_strategy() -> impl Strategy<Value = OpClass> {
    prop_oneof![
        Just(OpClass::Alu),
        Just(OpClass::Mul),
        Just(OpClass::Mem),
        Just(OpClass::Branch),
    ]
}

/// A random small bag of (cluster, class) placements.
fn placements(max_len: usize) -> impl Strategy<Value = Vec<(u8, OpClass)>> {
    prop::collection::vec((0u8..8, class_strategy()), 0..max_len)
}

proptest! {
    #[test]
    fn packed_matches_naive_counts(items in placements(24)) {
        let mut packed = ResourceVec::zero();
        let mut naive = NaiveCounts::default();
        for &(c, k) in &items {
            packed.bump(c, k);
            naive.bump(c, k);
        }
        for c in 0..8u8 {
            for k in OpClass::ALL {
                prop_assert_eq!(packed.get(c, k), naive.0[c as usize][k.index()]);
            }
        }
        prop_assert_eq!(packed.total_ops() as usize, items.len());
    }

    #[test]
    fn packed_sum_matches_naive_sum(a in placements(12), b in placements(12)) {
        let mut pa = ResourceVec::zero();
        let mut na = NaiveCounts::default();
        for &(c, k) in &a { pa.bump(c, k); na.bump(c, k); }
        let mut pb = ResourceVec::zero();
        let mut nb = NaiveCounts::default();
        for &(c, k) in &b { pb.bump(c, k); nb.bump(c, k); }
        let ps = pa.sum(pb);
        let ns = na.sum(&nb);
        for c in 0..8u8 {
            for k in OpClass::ALL {
                prop_assert_eq!(ps.get(c, k), ns.0[c as usize][k.index()]);
            }
        }
    }

    #[test]
    fn swar_exceeds_matches_naive(items in placements(16)) {
        let m = MachineConfig::paper_baseline();
        let caps = ResourceCaps::of(&m);
        let mut packed = ResourceVec::zero();
        let mut naive = NaiveCounts::default();
        for &(c, k) in &items {
            packed.bump(c, k);
            naive.bump(c, k);
        }
        prop_assert_eq!(packed.exceeds(&caps), naive.exceeds(&m));
    }

    #[test]
    fn smt_compat_matches_naive(a in placements(10), b in placements(10)) {
        let m = MachineConfig::paper_baseline();
        let caps = ResourceCaps::of(&m);
        let build_sig = |items: &[(u8, OpClass)]| {
            let mut res = ResourceVec::zero();
            let mut mask = 0u8;
            for &(c, k) in items {
                res.bump(c, k);
                mask |= 1 << c;
            }
            vliw_isa::InstrSignature { res, clusters: mask, n_ops: items.len() as u8 }
        };
        let sa = build_sig(&a);
        let sb = build_sig(&b);
        let mut na = NaiveCounts::default();
        for &(c, k) in &a { na.bump(c, k); }
        let mut nb = NaiveCounts::default();
        for &(c, k) in &b { nb.bump(c, k); }
        let ns = na.sum(&nb);
        let naive_ok = !ns.exceeds(&m) && !ns.cluster_over_issue(&m);
        prop_assert_eq!(sa.smt_compatible(sb, &caps), naive_ok);
    }

    /// Whatever the builder accepts is a legal placement: classes sit on
    /// allowed slots, no slot is used twice, signature matches the ops.
    #[test]
    fn builder_placements_are_legal(ops in prop::collection::vec(
        (0u8..4, prop_oneof![
            Just(Opcode::Add), Just(Opcode::Mpy), Just(Opcode::Ldw),
            Just(Opcode::Stw), Just(Opcode::Goto), Just(Opcode::Shl),
        ]), 0..20))
    {
        let m = MachineConfig::paper_baseline();
        let mut b = InstrBuilder::new(&m);
        let mut accepted = Vec::new();
        for (cluster, opcode) in ops {
            if b.push(Operation::new(opcode, cluster)).is_ok() {
                accepted.push((cluster, opcode));
            }
        }
        let instr = b.build();
        prop_assert_eq!(instr.n_ops(), accepted.len());
        let mut seen = std::collections::HashSet::new();
        for op in instr.ops() {
            let plan = m.slot_plan(op.cluster);
            prop_assert!(plan.slots_for(op.class()) & (1 << op.slot) != 0,
                "class {:?} on illegal slot {}", op.class(), op.slot);
            prop_assert!(seen.insert((op.cluster, op.slot)), "slot reused");
        }
        // Signature counts agree with a recount over ops.
        let sig = instr.signature();
        let mut recount = ResourceVec::zero();
        for op in instr.ops() {
            recount.bump(op.cluster, op.class());
        }
        prop_assert_eq!(sig.res, recount);
        prop_assert_eq!(sig.clusters, recount.cluster_mask());
    }
}
