//! Property tests for the machine-spec grammar: every parsable spelling
//! round-trips through `Display`, and every geometry `MachineError`
//! forbids is rejected at parse time with that exact error.

use proptest::prelude::*;
use vliw_isa::{MachineError, MachineSpec};

proptest! {
    /// Bare `CxI` geometries in the legal range always parse, lower to the
    /// requested shape, and round-trip `Display` → parse → the same spec.
    #[test]
    fn bare_geometries_roundtrip(c in 1u8..9, i in 1u8..9) {
        let spec: MachineSpec = format!("{c}x{i}").parse().unwrap();
        prop_assert_eq!(spec.label().parse::<MachineSpec>().unwrap(), spec);
        let cfg = spec.try_config().unwrap();
        prop_assert_eq!(cfg.n_clusters, c);
        prop_assert_eq!(cfg.issue_per_cluster, i);
        // Canonicalization only ever renames, never changes the machine.
        if let Some(name) = spec.preset_name() {
            prop_assert_eq!(name.parse::<MachineSpec>().unwrap().config(), cfg);
        }
    }

    /// `CxI+muls+mems` either parses (when the fixed-slot units fit the
    /// issue width) and round-trips, or is rejected with the exact
    /// `FixedUnitsExceedIssue` error `MachineConfig::validate` raises.
    #[test]
    fn explicit_units_roundtrip_or_reject(
        c in 1u8..9, i in 1u8..9, m in 0u8..9, e in 0u8..9,
    ) {
        let spelling = format!("{c}x{i}+{m}+{e}");
        // `MachineConfig::new` grants issue-3+ clusters a branch slot,
        // which `with_units` keeps: replicate the fixed-unit budget.
        let fixed = m + e + u8::from(i >= 3);
        match spelling.parse::<MachineSpec>() {
            Ok(spec) => {
                prop_assert!(fixed <= i, "{spelling} should have been rejected");
                prop_assert_eq!(spec.label().parse::<MachineSpec>().unwrap(), spec);
                let cfg = spec.try_config().unwrap();
                prop_assert_eq!(cfg.muls_per_cluster, m);
                prop_assert_eq!(cfg.mems_per_cluster, e);
            }
            Err(MachineError::FixedUnitsExceedIssue { .. }) => {
                prop_assert!(fixed > i, "{spelling} should have parsed");
            }
            Err(other) => prop_assert!(false, "{spelling}: unexpected error {other}"),
        }
    }

    /// Cluster counts and issue widths outside `1..=8` are rejected with
    /// the matching geometry error, never silently clamped.
    #[test]
    fn out_of_range_geometries_are_rejected(big in 9u8..100, ok in 1u8..9) {
        prop_assert!(matches!(
            format!("{big}x{ok}").parse::<MachineSpec>(),
            Err(MachineError::BadClusterCount(x)) if x == big
        ));
        prop_assert!(matches!(
            format!("{ok}x{big}").parse::<MachineSpec>(),
            Err(MachineError::BadIssueWidth(x)) if x == big
        ));
        prop_assert!(matches!(
            format!("0x{ok}").parse::<MachineSpec>(),
            Err(MachineError::BadClusterCount(0))
        ));
        prop_assert!(matches!(
            format!("{ok}x0").parse::<MachineSpec>(),
            Err(MachineError::BadIssueWidth(0))
        ));
    }
}
