//! Instruction size / address model.
//!
//! VEX and the Lx/ST200 family encode a VLIW instruction as a sequence of
//! 32-bit syllables with a stop bit on the last one; empty clusters consume
//! no space (compressed encoding). The simulator only needs instruction
//! *sizes* to lay out code and drive the instruction cache, not real bits,
//! so the encoder here computes syllable counts and assigns addresses.

use crate::instr::VliwInstruction;

/// Bytes per operation syllable.
pub const SYLLABLE_BYTES: u64 = 4;

/// Encoded size of one instruction in bytes.
///
/// A fully empty word still occupies one syllable (an explicit `nop`
/// syllable carrying the stop bit). Operations with a 32-bit immediate
/// consume an extra extension syllable, as on ST200.
pub fn encoded_size(instr: &VliwInstruction) -> u64 {
    if instr.is_nop() {
        return SYLLABLE_BYTES;
    }
    let mut syllables = 0u64;
    for op in instr.ops() {
        syllables += 1;
        if let Some(imm) = op.imm {
            // Short immediates fit in the syllable; long ones need an
            // extension syllable (ST200 `imml`/`immr` style).
            if !(-(1 << 8)..(1 << 8)).contains(&imm) {
                syllables += 1;
            }
        }
    }
    syllables * SYLLABLE_BYTES
}

/// Assign a byte address to every instruction of a straight-line block,
/// starting at `base`. Returns the per-instruction addresses and the first
/// address past the block.
pub fn layout_block(base: u64, instrs: &[VliwInstruction]) -> (Vec<u64>, u64) {
    let mut addrs = Vec::with_capacity(instrs.len());
    let mut pc = base;
    for i in instrs {
        addrs.push(pc);
        pc += encoded_size(i);
    }
    (addrs, pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::InstrBuilder;
    use crate::machine::MachineConfig;
    use crate::op::Opcode;
    use crate::operation::Operation;

    #[test]
    fn nop_occupies_one_syllable() {
        assert_eq!(encoded_size(&VliwInstruction::nop()), 4);
    }

    #[test]
    fn size_scales_with_ops() {
        let m = MachineConfig::paper_baseline();
        let mut b = InstrBuilder::new(&m);
        b.push(Operation::new(Opcode::Add, 0)).unwrap();
        b.push(Operation::new(Opcode::Sub, 1)).unwrap();
        b.push(Operation::new(Opcode::Ldw, 2)).unwrap();
        let i = b.build();
        assert_eq!(encoded_size(&i), 12);
    }

    #[test]
    fn long_immediates_take_extension_syllables() {
        let m = MachineConfig::paper_baseline();
        let mut b = InstrBuilder::new(&m);
        b.push(Operation::new(Opcode::Add, 0).with_imm(3)).unwrap();
        let short = b.build();
        assert_eq!(encoded_size(&short), 4);

        let mut b = InstrBuilder::new(&m);
        b.push(Operation::new(Opcode::Add, 0).with_imm(100_000))
            .unwrap();
        let long = b.build();
        assert_eq!(encoded_size(&long), 8);
    }

    #[test]
    fn layout_is_contiguous() {
        let m = MachineConfig::paper_baseline();
        let mk = |n: usize| {
            let mut b = InstrBuilder::new(&m);
            for c in 0..n {
                b.push(Operation::new(Opcode::Add, c as u8)).unwrap();
            }
            b.build()
        };
        let block = vec![mk(1), mk(4), mk(2)];
        let (addrs, end) = layout_block(0x1000, &block);
        assert_eq!(addrs, vec![0x1000, 0x1004, 0x1014]);
        assert_eq!(end, 0x101C);
    }
}
