//! Packed per-cluster resource usage summaries.
//!
//! The merge-control hardware of the paper never looks at full instructions:
//!
//! * CSMT merge control inspects only *which clusters* an instruction uses
//!   (one bit per cluster) — [`ClusterMask`];
//! * SMT merge control inspects *per-cluster, per-class operation counts*
//!   (how many ALU/multiply/memory/branch syllables land on each cluster) —
//!   [`ResourceVec`].
//!
//! The simulator evaluates a merge network every cycle, so both checks are
//! packed into machine words: a [`ResourceVec`] holds one byte per
//! (cluster, class) counter in two `u128` lanes (clusters 0..3 in `lo`,
//! 4..7 in `hi`), and the "does the combined packet exceed capacity?" test
//! is a pair of adds plus a mask — a classic SWAR saturation check. Counts
//! are bounded by the issue width (<= 8), so the high bit of every byte is
//! free to act as the guard bit.

use crate::machine::MachineConfig;
use crate::op::OpClass;
use crate::MAX_CLUSTERS;
use std::fmt;

/// One bit per cluster used by an instruction.
pub type ClusterMask = u8;

const HI_BITS: u128 = 0x8080_8080_8080_8080_8080_8080_8080_8080;
/// Clusters per `u128` lane (4 clusters x 4 classes x 1 byte = 16 bytes).
const CLUSTERS_PER_LANE: u8 = 4;

/// Per-cluster, per-class operation counts packed one byte per counter.
///
/// Counter for `(cluster c, class k)` lives at byte `(c % 4) * 4 + k` of
/// lane `c / 4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ResourceVec {
    /// Clusters 0..=3.
    pub lo: u128,
    /// Clusters 4..=7.
    pub hi: u128,
}

impl ResourceVec {
    /// The empty usage vector.
    #[inline]
    pub const fn zero() -> Self {
        ResourceVec { lo: 0, hi: 0 }
    }

    #[inline]
    fn shift_of(cluster: u8, class: OpClass) -> u32 {
        ((cluster % CLUSTERS_PER_LANE) as u32 * 4 + class.index() as u32) * 8
    }

    /// Count for `(cluster, class)`.
    #[inline]
    pub fn get(&self, cluster: u8, class: OpClass) -> u8 {
        debug_assert!((cluster as usize) < MAX_CLUSTERS);
        let lane = if cluster < CLUSTERS_PER_LANE {
            self.lo
        } else {
            self.hi
        };
        (lane >> Self::shift_of(cluster, class)) as u8
    }

    /// Increment the counter for `(cluster, class)` by one.
    #[inline]
    pub fn bump(&mut self, cluster: u8, class: OpClass) {
        debug_assert!((cluster as usize) < MAX_CLUSTERS);
        let inc = 1u128 << Self::shift_of(cluster, class);
        if cluster < CLUSTERS_PER_LANE {
            self.lo += inc;
        } else {
            self.hi += inc;
        }
    }

    /// Component-wise sum of two usage vectors.
    ///
    /// Sound as long as every resulting byte stays below 128; merge logic
    /// only sums vectors whose per-byte values are bounded by the issue
    /// width, so sums stay tiny and never carry across bytes.
    #[inline]
    pub fn sum(self, other: ResourceVec) -> ResourceVec {
        debug_assert_eq!(self.lo & HI_BITS, 0);
        debug_assert_eq!(other.lo & HI_BITS, 0);
        ResourceVec {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }

    /// True if any counter of `self` exceeds the corresponding capacity.
    ///
    /// `caps.addend_*` hold `0x7F - cap` per byte, so `v > cap` iff
    /// `v + (0x7F - cap)` sets the guard bit `0x80`.
    #[inline]
    pub fn exceeds(self, caps: &ResourceCaps) -> bool {
        ((self.lo + caps.addend_lo) | (self.hi + caps.addend_hi)) & HI_BITS != 0
    }

    /// Total operation count across all clusters and classes.
    pub fn total_ops(self) -> u32 {
        let bytes = |v: u128| v.to_le_bytes().iter().map(|&b| u32::from(b)).sum::<u32>();
        bytes(self.lo) + bytes(self.hi)
    }

    /// Operation count of one class summed over clusters.
    pub fn class_total(self, class: OpClass) -> u32 {
        (0..MAX_CLUSTERS as u8)
            .map(|c| u32::from(self.get(c, class)))
            .sum()
    }

    /// Per-cluster total operation count (all classes).
    #[inline]
    pub fn cluster_total(self, cluster: u8) -> u32 {
        let lane = if cluster < CLUSTERS_PER_LANE {
            self.lo
        } else {
            self.hi
        };
        let word = (lane >> ((cluster % CLUSTERS_PER_LANE) as u32 * 32)) as u32;
        (word & 0xFF) + ((word >> 8) & 0xFF) + ((word >> 16) & 0xFF) + ((word >> 24) & 0xFF)
    }

    /// Derive the cluster usage mask (bit c set iff cluster c has any op).
    pub fn cluster_mask(self) -> ClusterMask {
        let mut mask = 0u8;
        for c in 0..MAX_CLUSTERS as u8 {
            if self.cluster_total(c) != 0 {
                mask |= 1 << c;
            }
        }
        mask
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in 0..MAX_CLUSTERS as u8 {
            let counts: Vec<u8> = OpClass::ALL.iter().map(|&k| self.get(c, k)).collect();
            if counts.iter().all(|&x| x == 0) {
                continue;
            }
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(
                f,
                "c{c}[a{} m{} l{} b{}]",
                counts[0], counts[1], counts[2], counts[3]
            )?;
        }
        if first {
            write!(f, "empty")?;
        }
        Ok(())
    }
}

/// Precomputed per-(cluster, class) capacities in SWAR-check form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceCaps {
    /// Per-byte `0x7F - capacity` values for clusters 0..=3.
    pub addend_lo: u128,
    /// Per-byte `0x7F - capacity` values for clusters 4..=7.
    pub addend_hi: u128,
    /// Issue width per cluster (total-ops bound).
    pub issue: u8,
    /// Number of clusters in the machine.
    pub n_clusters: u8,
}

impl ResourceCaps {
    /// Derive capacities from a machine description. Clusters beyond the
    /// machine get capacity 0, so any op placed there trips the check.
    pub fn of(machine: &MachineConfig) -> Self {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for c in 0..MAX_CLUSTERS as u8 {
            for k in OpClass::ALL {
                let cap = if c < machine.n_clusters {
                    machine.class_capacity(c, k)
                } else {
                    0
                };
                let byte = (c % CLUSTERS_PER_LANE) as usize * 4 + k.index();
                if c < CLUSTERS_PER_LANE {
                    lo[byte] = 0x7F - cap;
                } else {
                    hi[byte] = 0x7F - cap;
                }
            }
        }
        ResourceCaps {
            addend_lo: u128::from_le_bytes(lo),
            addend_hi: u128::from_le_bytes(hi),
            issue: machine.issue_per_cluster,
            n_clusters: machine.n_clusters,
        }
    }
}

/// Compact, precomputed summary of one VLIW instruction, sufficient for all
/// merge-control decisions and cheap to copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct InstrSignature {
    /// Per-cluster per-class operation counts.
    pub res: ResourceVec,
    /// Clusters used by the instruction.
    pub clusters: ClusterMask,
    /// Total operation count (for IPC accounting).
    pub n_ops: u8,
}

impl InstrSignature {
    /// The empty signature (a fully vacant instruction / bubble).
    pub const EMPTY: InstrSignature = InstrSignature {
        res: ResourceVec { lo: 0, hi: 0 },
        clusters: 0,
        n_ops: 0,
    };

    /// Signature of the union of two instructions (assumes the merge was
    /// validated first).
    #[inline]
    pub fn merged_with(self, other: InstrSignature) -> InstrSignature {
        InstrSignature {
            res: self.res.sum(other.res),
            clusters: self.clusters | other.clusters,
            n_ops: self.n_ops + other.n_ops,
        }
    }

    /// Cluster-level conflict test — the CSMT merge condition (paper §2.1):
    /// two instructions may merge iff they use disjoint clusters.
    #[inline]
    pub fn cluster_disjoint(self, other: InstrSignature) -> bool {
        self.clusters & other.clusters == 0
    }

    /// Rotate the signature's cluster usage by `by` positions (mod
    /// `n_clusters`).
    ///
    /// Multithreaded clustered machines wire each hardware context's
    /// virtual clusters onto physical clusters with a fixed per-context
    /// rotation, so that compact (few-cluster) threads occupy *different*
    /// physical clusters and can merge at cluster level. The fast path
    /// (4-cluster machines, the paper's geometry) is two shifts.
    #[inline]
    pub fn rotate_clusters(self, by: u8, n_clusters: u8) -> InstrSignature {
        if by == 0 || self.clusters == 0 {
            return self;
        }
        let n = u32::from(n_clusters);
        let by = u32::from(by) % n;
        if by == 0 {
            return self;
        }
        let mask_n: u16 = (1u16 << n) - 1;
        let m = u16::from(self.clusters) & mask_n;
        let clusters = (((m << by) | (m >> (n - by))) & mask_n) as u8;
        let res = if n_clusters == 4 {
            // All four lanes live in `lo`: a 32-bit lane rotation is a
            // u128 rotate.
            ResourceVec {
                lo: self.res.lo.rotate_left(32 * by),
                hi: 0,
            }
        } else {
            // Generic (cold) path: rebuild lane by lane.
            let mut out = ResourceVec::zero();
            for c in 0..n_clusters {
                let dst = (c + by as u8) % n_clusters;
                for k in OpClass::ALL {
                    for _ in 0..self.res.get(c, k) {
                        out.bump(dst, k);
                    }
                }
            }
            out
        };
        InstrSignature {
            res,
            clusters,
            n_ops: self.n_ops,
        }
    }

    /// Operation-level conflict test — the SMT merge condition: the combined
    /// per-cluster per-class counts must fit the machine capacities *and*
    /// the combined per-cluster totals must fit the issue width.
    ///
    /// Because the machine assigns disjoint slot sets to the fixed classes
    /// (see [`MachineConfig::slot_plan`]) these counting checks are exact:
    /// they succeed iff a conflict-free slot assignment (routing) exists.
    #[inline]
    pub fn smt_compatible(self, other: InstrSignature, caps: &ResourceCaps) -> bool {
        let sum = self.res.sum(other.res);
        if sum.exceeds(caps) {
            return false;
        }
        for c in 0..caps.n_clusters {
            if sum.cluster_total(c) > u32::from(caps.issue) {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for InstrSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sig{{ops={}, clusters={:04b}, {}}}",
            self.n_ops, self.clusters, self.res
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    fn caps() -> ResourceCaps {
        ResourceCaps::of(&MachineConfig::paper_baseline())
    }

    fn sig(parts: &[(u8, OpClass, u8)]) -> InstrSignature {
        let mut res = ResourceVec::zero();
        let mut n = 0u8;
        let mut mask = 0u8;
        for &(cluster, class, count) in parts {
            for _ in 0..count {
                res.bump(cluster, class);
                n += 1;
            }
            if count > 0 {
                mask |= 1 << cluster;
            }
        }
        InstrSignature {
            res,
            clusters: mask,
            n_ops: n,
        }
    }

    #[test]
    fn bump_and_get_roundtrip() {
        let mut v = ResourceVec::zero();
        v.bump(0, OpClass::Alu);
        v.bump(0, OpClass::Alu);
        v.bump(3, OpClass::Mem);
        v.bump(7, OpClass::Mul);
        assert_eq!(v.get(0, OpClass::Alu), 2);
        assert_eq!(v.get(3, OpClass::Mem), 1);
        assert_eq!(v.get(7, OpClass::Mul), 1);
        assert_eq!(v.get(1, OpClass::Mul), 0);
        assert_eq!(v.total_ops(), 4);
        assert_eq!(v.cluster_mask(), 0b1000_1001);
    }

    #[test]
    fn exceeds_detects_class_overflow() {
        let c = caps();
        // 2 muls fit on a cluster, 3 do not.
        assert!(!sig(&[(1, OpClass::Mul, 2)]).res.exceeds(&c));
        assert!(sig(&[(1, OpClass::Mul, 3)]).res.exceeds(&c));
        // 1 mem fits, 2 do not.
        assert!(!sig(&[(2, OpClass::Mem, 1)]).res.exceeds(&c));
        assert!(sig(&[(2, OpClass::Mem, 2)]).res.exceeds(&c));
        // One branch per cluster fits; two do not.
        assert!(!sig(&[(0, OpClass::Branch, 1)]).res.exceeds(&c));
        assert!(sig(&[(1, OpClass::Branch, 2)]).res.exceeds(&c));
        // A cluster-0-only branch machine rejects branches elsewhere.
        let m1 = MachineConfig::paper_baseline()
            .with_branch_clusters(0b1)
            .unwrap();
        let c1 = ResourceCaps::of(&m1);
        assert!(sig(&[(1, OpClass::Branch, 1)]).res.exceeds(&c1));
        // Clusters beyond the machine have zero capacity.
        assert!(sig(&[(5, OpClass::Alu, 1)]).res.exceeds(&c));
    }

    #[test]
    fn smt_compat_counts_total_issue() {
        let c = caps();
        // 3 ALU + 2 MUL on one cluster = 5 ops > 4 issue slots even though
        // each class individually fits.
        let a = sig(&[(0, OpClass::Alu, 3)]);
        let b = sig(&[(0, OpClass::Mul, 2)]);
        assert!(!a.smt_compatible(b, &c));
        // 2 ALU + 2 MUL = 4 ops fits exactly.
        let a = sig(&[(0, OpClass::Alu, 2)]);
        assert!(a.smt_compatible(b, &c));
    }

    #[test]
    fn csmt_is_stricter_than_smt() {
        let c = caps();
        let a = sig(&[(0, OpClass::Alu, 1)]);
        let b = sig(&[(0, OpClass::Alu, 1)]);
        assert!(a.smt_compatible(b, &c));
        assert!(!a.cluster_disjoint(b));
        let d = sig(&[(1, OpClass::Alu, 1)]);
        assert!(a.cluster_disjoint(d));
        assert!(a.smt_compatible(d, &c));
    }

    #[test]
    fn merged_signature_accumulates() {
        let a = sig(&[(0, OpClass::Alu, 2), (1, OpClass::Mem, 1)]);
        let b = sig(&[(2, OpClass::Mul, 1)]);
        let m = a.merged_with(b);
        assert_eq!(m.n_ops, 4);
        assert_eq!(m.clusters, 0b0111);
        assert_eq!(m.res.get(0, OpClass::Alu), 2);
        assert_eq!(m.res.get(2, OpClass::Mul), 1);
    }

    #[test]
    fn empty_signature_merges_with_anything() {
        let c = caps();
        let a = sig(&[(0, OpClass::Alu, 4)]);
        assert!(InstrSignature::EMPTY.smt_compatible(a, &c));
        assert!(InstrSignature::EMPTY.cluster_disjoint(a));
        assert_eq!(InstrSignature::EMPTY.merged_with(a), a);
    }

    #[test]
    fn class_totals() {
        let a = sig(&[
            (0, OpClass::Alu, 2),
            (1, OpClass::Alu, 1),
            (1, OpClass::Mem, 1),
        ]);
        assert_eq!(a.res.class_total(OpClass::Alu), 3);
        assert_eq!(a.res.class_total(OpClass::Mem), 1);
        assert_eq!(a.res.class_total(OpClass::Branch), 0);
    }

    #[test]
    fn cluster_totals_per_lane() {
        let a = sig(&[(0, OpClass::Alu, 2), (4, OpClass::Alu, 3)]);
        assert_eq!(a.res.cluster_total(0), 2);
        assert_eq!(a.res.cluster_total(4), 3);
        assert_eq!(a.res.cluster_total(2), 0);
    }
}
