//! Named machine-geometry specs: serializable identities for
//! [`MachineConfig`]s.
//!
//! The paper evaluates one machine (§5.1: 4 clusters × 4-issue). A
//! [`MachineSpec`] generalizes that into a *named, parsable* description —
//! the machine-side analogue of the merge-scheme grammar and the scheduler
//! specs — so cluster count, issue width and functional-unit mix become
//! experimental variables instead of frozen constants:
//!
//! * **Presets** — `paper-4x4` (the §5.1 baseline, bit-identical to
//!   [`MachineConfig::paper_baseline`]), `2x8` (2 fat 8-issue clusters),
//!   `8x2` (8 narrow 2-issue clusters; same 16-issue total), and
//!   `4x4-lite` (the paper geometry with a reduced 1-multiplier FU mix).
//! * **Grammar** — `CxI[+muls+mems]`: cluster count, `x`, issue width,
//!   optionally `+` multipliers `+` memory units per cluster (e.g. `4x4`,
//!   `2x8+1+2`). Omitted units use [`MachineConfig::new`]'s VEX-style
//!   scaling. A parsed geometry that lowers to the same [`MachineConfig`]
//!   as a preset canonicalizes *to* that preset (`"4x4+2+1"` parses as
//!   `paper-4x4`), so exhibit labels are stable.
//!
//! Parsing is case-insensitive and accepts `_` for `-`, mirroring the
//! scheduler-spec conventions; every spelling is validated at parse time
//! (a geometry [`MachineError`] forbids never parses). [`std::fmt::Display`]
//! round-trips: `parse(spec.to_string()) == spec` for any spec obtained
//! from the parser or the presets.

use crate::machine::{MachineConfig, MachineError};
use std::fmt;
use std::str::FromStr;

/// A named, serializable machine geometry that lowers to a validated
/// [`MachineConfig`].
///
/// Obtain one from [`MachineSpec::presets`], the [`FromStr`] parser (see
/// the [module docs](self) for the grammar), or [`MachineSpec::custom`].
/// The spec is the *identity* carried by experiment grids and serialized
/// exhibits; [`MachineSpec::config`] produces the concrete machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MachineSpec {
    /// The paper's §5.1 evaluation machine: 4 clusters × 4-issue,
    /// 2 multipliers + 1 load/store unit per cluster. Lowers bit-identically
    /// to [`MachineConfig::paper_baseline`]. The default.
    #[default]
    Paper4x4,
    /// Two fat clusters of 8 issue slots each (16-issue total): fewer,
    /// wider register files — the low-cluster-count end of the paper's
    /// design space.
    Wide2x8,
    /// Eight narrow clusters of 2 issue slots each (16-issue total): narrow
    /// clusters carry no dedicated branch slot (control flow is implicit,
    /// the taken-branch penalty still applies) — the high-cluster-count
    /// end of the design space.
    Narrow8x2,
    /// The paper geometry with a reduced functional-unit mix (1 multiplier
    /// + 1 load/store unit per cluster): the area-saving variant.
    Lite4x4,
    /// An explicit `CxI[+muls+mems]` geometry that matches no preset.
    /// Construct via [`MachineSpec::custom`] (or the parser), which
    /// validates and canonicalizes; hand-built variants that encode a
    /// geometry [`MachineConfig::validate`] rejects make
    /// [`MachineSpec::config`] panic.
    Custom {
        /// Number of clusters (`1..=MAX_CLUSTERS`).
        clusters: u8,
        /// Issue slots per cluster (`1..=MAX_ISSUE`).
        issue: u8,
        /// Explicit `(multipliers, memory units)` per cluster; `None` uses
        /// [`MachineConfig::new`]'s VEX-style scaling for the issue width.
        units: Option<(u8, u8)>,
    },
}

impl MachineSpec {
    /// Every named preset, in catalog order.
    pub const fn presets() -> [MachineSpec; 4] {
        [
            MachineSpec::Paper4x4,
            MachineSpec::Wide2x8,
            MachineSpec::Narrow8x2,
            MachineSpec::Lite4x4,
        ]
    }

    /// Stable name of a preset (the parse spelling and the serialized
    /// exhibit label); `None` for custom geometries, whose label is the
    /// grammar spelling (see [`MachineSpec::label`]).
    pub const fn preset_name(self) -> Option<&'static str> {
        match self {
            MachineSpec::Paper4x4 => Some("paper-4x4"),
            MachineSpec::Wide2x8 => Some("2x8"),
            MachineSpec::Narrow8x2 => Some("8x2"),
            MachineSpec::Lite4x4 => Some("4x4-lite"),
            MachineSpec::Custom { .. } => None,
        }
    }

    /// The spec's serialized label: the preset name, or the canonical
    /// `CxI[+muls+mems]` spelling for customs. Round-trips through the
    /// parser.
    pub fn label(self) -> String {
        self.to_string()
    }

    /// Build a validated spec from an explicit geometry, canonicalizing to
    /// a preset when the lowered [`MachineConfig`] matches one (so
    /// `custom(4, 4, Some((2, 1)))` *is* [`MachineSpec::Paper4x4`] and
    /// serializes under the stable preset label).
    pub fn custom(clusters: u8, issue: u8, units: Option<(u8, u8)>) -> Result<Self, MachineError> {
        let spec = MachineSpec::Custom {
            clusters,
            issue,
            units,
        };
        let cfg = spec.try_config()?;
        Ok(Self::presets()
            .into_iter()
            .find(|p| p.config() == cfg)
            .unwrap_or(spec))
    }

    /// Lower to the concrete machine configuration.
    ///
    /// Presets and parser-produced specs are pre-validated and never fail;
    /// a hand-built [`MachineSpec::Custom`] encoding a forbidden geometry
    /// panics with the [`MachineError`] message. Use
    /// [`MachineSpec::try_config`] to handle that case gracefully.
    pub fn config(self) -> MachineConfig {
        self.try_config()
            .unwrap_or_else(|e| panic!("machine spec {self}: {e}"))
    }

    /// Lower to the concrete machine configuration, surfacing validation
    /// errors instead of panicking.
    pub fn try_config(self) -> Result<MachineConfig, MachineError> {
        match self {
            MachineSpec::Paper4x4 => Ok(MachineConfig::paper_baseline()),
            MachineSpec::Wide2x8 => MachineConfig::new(2, 8),
            MachineSpec::Narrow8x2 => MachineConfig::new(8, 2),
            MachineSpec::Lite4x4 => MachineConfig::new(4, 4)?.with_units(1, 1),
            MachineSpec::Custom {
                clusters,
                issue,
                units,
            } => {
                let cfg = MachineConfig::new(clusters, issue)?;
                match units {
                    Some((muls, mems)) => cfg.with_units(muls, mems),
                    None => Ok(cfg),
                }
            }
        }
    }

    /// Whether the lowered machine can host every operation class of the
    /// synthetic benchmark suite (at least one multiplier and one memory
    /// unit somewhere): geometries below this compile ALU-only programs
    /// but panic on the Table-1 kernels, so sweep frontends check it up
    /// front.
    pub fn runs_full_suite(self) -> bool {
        self.try_config()
            .map(|c| c.muls_per_cluster >= 1 && c.mems_per_cluster >= 1)
            .unwrap_or(false)
    }
}

impl fmt::Display for MachineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.preset_name() {
            Some(name) => f.write_str(name),
            None => {
                let MachineSpec::Custom {
                    clusters,
                    issue,
                    units,
                } = *self
                else {
                    unreachable!("every non-custom spec has a preset name")
                };
                write!(f, "{clusters}x{issue}")?;
                if let Some((muls, mems)) = units {
                    write!(f, "+{muls}+{mems}")?;
                }
                Ok(())
            }
        }
    }
}

impl FromStr for MachineSpec {
    type Err = MachineError;

    /// Parse a preset name or a `CxI[+muls+mems]` geometry (see the
    /// [module docs](self)). Case-insensitive; `_` and `-` are
    /// interchangeable. The result is always validated: a geometry
    /// [`MachineConfig::validate`] rejects surfaces that [`MachineError`],
    /// and an unintelligible spelling surfaces
    /// [`MachineError::UnknownSpec`].
    fn from_str(s: &str) -> Result<Self, MachineError> {
        let normalized = s.trim().to_ascii_lowercase().replace('_', "-");
        if let Some(preset) = Self::presets()
            .into_iter()
            .find(|p| p.preset_name() == Some(normalized.as_str()))
        {
            return Ok(preset);
        }
        parse_grammar(&normalized).ok_or_else(|| MachineError::UnknownSpec(s.to_string()))?
    }
}

/// Parse the `CxI[+muls+mems]` grammar. `None` = not grammar-shaped (an
/// unknown-spec error); `Some(Err(..))` = grammar-shaped but encoding a
/// forbidden geometry (the validation error, verbatim).
fn parse_grammar(s: &str) -> Option<Result<MachineSpec, MachineError>> {
    let mut parts = s.split('+');
    let geometry = parts.next()?;
    let (c, i) = geometry.split_once('x')?;
    let clusters: u8 = c.parse().ok()?;
    let issue: u8 = i.parse().ok()?;
    let units = match (parts.next(), parts.next()) {
        (None, _) => None,
        (Some(m), Some(e)) => Some((m.parse().ok()?, e.parse().ok()?)),
        (Some(_), None) => return None, // `+muls` without `+mems`
    };
    if parts.next().is_some() {
        return None; // trailing `+...` garbage
    }
    Some(MachineSpec::custom(clusters, issue, units))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_is_bit_identical_to_the_baseline() {
        assert_eq!(
            MachineSpec::Paper4x4.config(),
            MachineConfig::paper_baseline()
        );
        assert_eq!(MachineSpec::default(), MachineSpec::Paper4x4);
    }

    #[test]
    fn presets_lower_to_the_documented_geometries() {
        let wide = MachineSpec::Wide2x8.config();
        assert_eq!((wide.n_clusters, wide.issue_per_cluster), (2, 8));
        assert_eq!(wide.total_issue(), 16);
        let narrow = MachineSpec::Narrow8x2.config();
        assert_eq!((narrow.n_clusters, narrow.issue_per_cluster), (8, 2));
        assert_eq!(narrow.total_issue(), 16);
        assert_eq!(narrow.branch_clusters, 0, "2-issue clusters: no branch");
        let lite = MachineSpec::Lite4x4.config();
        assert_eq!(lite.muls_per_cluster, 1);
        assert_eq!(lite.mems_per_cluster, 1);
        for p in MachineSpec::presets() {
            assert!(p.runs_full_suite(), "{p} must run the Table-1 suite");
        }
    }

    #[test]
    fn preset_names_parse_and_roundtrip() {
        for p in MachineSpec::presets() {
            let name = p.preset_name().unwrap();
            assert_eq!(name.parse::<MachineSpec>().unwrap(), p);
            assert_eq!(p.label(), name);
            // Case-insensitive, `_` for `-`.
            assert_eq!(name.to_uppercase().parse::<MachineSpec>().unwrap(), p);
            assert_eq!(name.replace('-', "_").parse::<MachineSpec>().unwrap(), p);
        }
    }

    #[test]
    fn grammar_canonicalizes_to_presets() {
        assert_eq!("4x4".parse::<MachineSpec>().unwrap(), MachineSpec::Paper4x4);
        assert_eq!(
            "4x4+2+1".parse::<MachineSpec>().unwrap(),
            MachineSpec::Paper4x4
        );
        assert_eq!(
            "4x4+1+1".parse::<MachineSpec>().unwrap(),
            MachineSpec::Lite4x4
        );
        assert_eq!("2x8".parse::<MachineSpec>().unwrap(), MachineSpec::Wide2x8);
        assert_eq!(
            "8X2".parse::<MachineSpec>().unwrap(),
            MachineSpec::Narrow8x2
        );
    }

    #[test]
    fn custom_geometries_roundtrip_through_display() {
        for s in ["3x4", "2x8+1+2", "6x3", "8x8", "1x2"] {
            let spec: MachineSpec = s.parse().unwrap();
            assert_eq!(spec.to_string().parse::<MachineSpec>().unwrap(), spec);
            assert!(spec.try_config().is_ok());
        }
        // `3x4` keeps its grammar label (it matches no preset).
        assert_eq!("3x4".parse::<MachineSpec>().unwrap().label(), "3x4");
    }

    #[test]
    fn forbidden_geometries_surface_machine_errors() {
        assert!(matches!(
            "0x4".parse::<MachineSpec>(),
            Err(MachineError::BadClusterCount(0))
        ));
        assert!(matches!(
            "9x4".parse::<MachineSpec>(),
            Err(MachineError::BadClusterCount(9))
        ));
        assert!(matches!(
            "4x0".parse::<MachineSpec>(),
            Err(MachineError::BadIssueWidth(0))
        ));
        assert!(matches!(
            "4x4+4+4".parse::<MachineSpec>(),
            Err(MachineError::FixedUnitsExceedIssue { .. })
        ));
    }

    #[test]
    fn unintelligible_spellings_are_unknown_specs() {
        for s in ["", "fast", "4", "4x", "x4", "4x4+2", "4x4+2+1+0", "axb"] {
            assert!(
                matches!(
                    s.parse::<MachineSpec>(),
                    Err(MachineError::UnknownSpec(ref u)) if u == s
                ),
                "{s:?} must be an unknown-spec error"
            );
        }
    }

    #[test]
    fn alu_only_machines_do_not_run_the_suite() {
        let spec: MachineSpec = "4x1".parse().unwrap();
        assert!(!spec.runs_full_suite());
        let no_mems: MachineSpec = "4x4+2+0".parse().unwrap();
        assert!(!no_mems.runs_full_suite());
    }
}
