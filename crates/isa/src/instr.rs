//! VLIW instruction words: checked construction, signatures, slot placement.

use crate::machine::MachineConfig;
use crate::op::OpClass;
use crate::operation::Operation;
use crate::signature::{InstrSignature, ResourceVec};
use std::fmt;

/// Errors raised while building a [`VliwInstruction`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstrError {
    /// Operation names a cluster the machine does not have.
    BadCluster(u8),
    /// Slot index beyond the cluster issue width.
    BadSlot {
        /// offending cluster
        cluster: u8,
        /// offending slot
        slot: u8,
    },
    /// Two operations were placed on the same (cluster, slot).
    SlotTaken {
        /// offending cluster
        cluster: u8,
        /// offending slot
        slot: u8,
    },
    /// Operation class not executable on the requested slot.
    ClassSlotMismatch {
        /// offending cluster
        cluster: u8,
        /// offending slot
        slot: u8,
        /// operation class that does not fit there
        class: OpClass,
    },
    /// No free slot remains for the operation class on that cluster.
    NoFreeSlot {
        /// offending cluster
        cluster: u8,
        /// operation class that could not be placed
        class: OpClass,
    },
    /// Intra-operation invariant violated (wrong-cluster operand, ...).
    BadOperation(String),
}

impl fmt::Display for InstrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstrError::BadCluster(c) => write!(f, "cluster {c} out of range"),
            InstrError::BadSlot { cluster, slot } => {
                write!(f, "slot {slot} out of range on cluster {cluster}")
            }
            InstrError::SlotTaken { cluster, slot } => {
                write!(f, "slot {slot} on cluster {cluster} already taken")
            }
            InstrError::ClassSlotMismatch {
                cluster,
                slot,
                class,
            } => write!(
                f,
                "class {class} cannot execute on cluster {cluster} slot {slot}"
            ),
            InstrError::NoFreeSlot { cluster, class } => {
                write!(f, "no free {class} slot on cluster {cluster}")
            }
            InstrError::BadOperation(msg) => write!(f, "bad operation: {msg}"),
        }
    }
}

impl std::error::Error for InstrError {}

/// One VLIW instruction: a set of operations with concrete (cluster, slot)
/// placements, plus its precomputed merge signature.
///
/// Instructions are immutable once built; construct them through
/// [`InstrBuilder`], which enforces the machine's slot plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VliwInstruction {
    ops: Vec<Operation>,
    signature: InstrSignature,
}

impl VliwInstruction {
    /// The empty instruction (an explicit `nop` cycle).
    pub fn nop() -> Self {
        VliwInstruction {
            ops: Vec::new(),
            signature: InstrSignature::EMPTY,
        }
    }

    /// Operations, ordered by (cluster, slot).
    #[inline]
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Number of operations in the word.
    #[inline]
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// True if the word carries no operations.
    #[inline]
    pub fn is_nop(&self) -> bool {
        self.ops.is_empty()
    }

    /// Precomputed merge signature.
    #[inline]
    pub fn signature(&self) -> InstrSignature {
        self.signature
    }

    /// Wrap raw operations into an instruction **without legality checks**.
    ///
    /// The signature is recomputed from the operations (so it is always
    /// self-consistent), but no slot-plan, cluster-range or operand
    /// validation happens — the result may be an illegal word for every
    /// machine. This exists for verification tooling (`vliw-analyze`'s
    /// mutation harness builds deliberately-corrupt instructions to prove
    /// the analyzer catches them); production code paths must go through
    /// [`InstrBuilder`].
    pub fn from_ops_unchecked(mut ops: Vec<Operation>) -> Self {
        ops.sort_by_key(|o| (o.cluster, o.slot));
        let mut res = ResourceVec::zero();
        let mut mask = 0u8;
        for op in &ops {
            res.bump(op.cluster, op.class());
            mask |= 1 << op.cluster;
        }
        let signature = InstrSignature {
            res,
            clusters: mask,
            n_ops: ops.len() as u8,
        };
        VliwInstruction { ops, signature }
    }

    /// The conditional/unconditional branch operation, if any.
    pub fn branch_op(&self) -> Option<&Operation> {
        self.ops.iter().find(|o| o.class() == OpClass::Branch)
    }

    /// Iterator over memory operations.
    pub fn mem_ops(&self) -> impl Iterator<Item = &Operation> {
        self.ops.iter().filter(|o| o.class() == OpClass::Mem)
    }

    /// Maximum completion latency of the word's operations.
    pub fn max_latency(&self, machine: &MachineConfig) -> u8 {
        self.ops
            .iter()
            .map(|o| machine.latency_of(o.class()))
            .max()
            .unwrap_or(1)
    }
}

/// Checked builder for [`VliwInstruction`].
///
/// `push` auto-places an operation in the lowest legal free slot of its
/// cluster; `push_at` places it at an explicit slot. Both enforce the
/// machine's [`crate::SlotPlan`].
pub struct InstrBuilder<'m> {
    machine: &'m MachineConfig,
    ops: Vec<Operation>,
    /// Per-cluster occupied-slot mask.
    taken: [u8; crate::MAX_CLUSTERS],
}

impl<'m> InstrBuilder<'m> {
    /// Start building an instruction for `machine`.
    pub fn new(machine: &'m MachineConfig) -> Self {
        InstrBuilder {
            machine,
            ops: Vec::with_capacity(machine.total_issue()),
            taken: [0; crate::MAX_CLUSTERS],
        }
    }

    /// Place `op` in the lowest legal free slot of its cluster.
    pub fn push(&mut self, op: Operation) -> Result<u8, InstrError> {
        let cluster = op.cluster;
        self.check_common(&op)?;
        let plan = self.machine.slot_plan(cluster);
        let legal = plan.slots_for(op.class());
        let free = legal & !self.taken[cluster as usize];
        if free == 0 {
            return Err(InstrError::NoFreeSlot {
                cluster,
                class: op.class(),
            });
        }
        let slot = free.trailing_zeros() as u8;
        self.place(op, slot);
        Ok(slot)
    }

    /// Place `op` at an explicit slot.
    pub fn push_at(&mut self, op: Operation, slot: u8) -> Result<(), InstrError> {
        let cluster = op.cluster;
        self.check_common(&op)?;
        if slot >= self.machine.issue_per_cluster {
            return Err(InstrError::BadSlot { cluster, slot });
        }
        let plan = self.machine.slot_plan(cluster);
        if plan.slots_for(op.class()) & (1 << slot) == 0 {
            return Err(InstrError::ClassSlotMismatch {
                cluster,
                slot,
                class: op.class(),
            });
        }
        if self.taken[cluster as usize] & (1 << slot) != 0 {
            return Err(InstrError::SlotTaken { cluster, slot });
        }
        self.place(op, slot);
        Ok(())
    }

    fn check_common(&self, op: &Operation) -> Result<(), InstrError> {
        if op.cluster >= self.machine.n_clusters {
            return Err(InstrError::BadCluster(op.cluster));
        }
        op.check().map_err(InstrError::BadOperation)?;
        Ok(())
    }

    fn place(&mut self, mut op: Operation, slot: u8) {
        op.slot = slot;
        self.taken[op.cluster as usize] |= 1 << slot;
        self.ops.push(op);
    }

    /// Number of operations placed so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing was placed yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether a `class` operation could still be placed on `cluster`.
    pub fn has_free_slot(&self, cluster: u8, class: OpClass) -> bool {
        if cluster >= self.machine.n_clusters {
            return false;
        }
        let plan = self.machine.slot_plan(cluster);
        plan.slots_for(class) & !self.taken[cluster as usize] != 0
    }

    /// Finish: sort operations by (cluster, slot) and compute the signature.
    pub fn build(mut self) -> VliwInstruction {
        self.ops.sort_by_key(|o| (o.cluster, o.slot));
        let mut res = ResourceVec::zero();
        let mut mask = 0u8;
        for op in &self.ops {
            res.bump(op.cluster, op.class());
            mask |= 1 << op.cluster;
        }
        let signature = InstrSignature {
            res,
            clusters: mask,
            n_ops: self.ops.len() as u8,
        };
        VliwInstruction {
            ops: self.ops,
            signature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Opcode;
    use crate::operation::{Operation, Reg};

    fn machine() -> MachineConfig {
        MachineConfig::paper_baseline()
    }

    #[test]
    fn auto_placement_respects_slot_plan() {
        let m = machine();
        let mut b = InstrBuilder::new(&m);
        // Memory op must land on slot 2 (after the two mul slots).
        let s = b.push(Operation::new(Opcode::Ldw, 0)).unwrap();
        assert_eq!(s, 2);
        // Multiplies land on slots 0 and 1.
        assert_eq!(b.push(Operation::new(Opcode::Mpy, 0)).unwrap(), 0);
        assert_eq!(b.push(Operation::new(Opcode::Mpyl, 0)).unwrap(), 1);
        // Third multiply has no slot.
        assert!(matches!(
            b.push(Operation::new(Opcode::Mpyh, 0)),
            Err(InstrError::NoFreeSlot { .. })
        ));
        // ALU fills the remaining slot 3.
        assert_eq!(b.push(Operation::new(Opcode::Add, 0)).unwrap(), 3);
        // Cluster now full.
        assert!(matches!(
            b.push(Operation::new(Opcode::Sub, 0)),
            Err(InstrError::NoFreeSlot { .. })
        ));
        let i = b.build();
        assert_eq!(i.n_ops(), 4);
        assert_eq!(i.signature().clusters, 0b0001);
    }

    #[test]
    fn branch_only_on_branch_cluster() {
        // Restrict branch capability to cluster 0 (the no-renaming form).
        let m = machine().with_branch_clusters(0b1).unwrap();
        let mut b = InstrBuilder::new(&m);
        assert_eq!(b.push(Operation::new(Opcode::Goto, 0)).unwrap(), 3);
        let mut b = InstrBuilder::new(&m);
        assert!(matches!(
            b.push(Operation::new(Opcode::Goto, 1)),
            Err(InstrError::NoFreeSlot { .. })
        ));
    }

    #[test]
    fn explicit_placement_checks() {
        let m = machine();
        let mut b = InstrBuilder::new(&m);
        // Mul on an ALU-only slot is rejected.
        assert!(matches!(
            b.push_at(Operation::new(Opcode::Mpy, 0), 3),
            Err(InstrError::ClassSlotMismatch { .. })
        ));
        b.push_at(Operation::new(Opcode::Add, 0), 3).unwrap();
        assert!(matches!(
            b.push_at(Operation::new(Opcode::Sub, 0), 3),
            Err(InstrError::SlotTaken { .. })
        ));
        assert!(matches!(
            b.push_at(Operation::new(Opcode::Add, 9), 0),
            Err(InstrError::BadCluster(9))
        ));
        assert!(matches!(
            b.push_at(Operation::new(Opcode::Add, 0), 8),
            Err(InstrError::BadSlot { .. })
        ));
    }

    #[test]
    fn signature_matches_ops() {
        let m = machine();
        let mut b = InstrBuilder::new(&m);
        b.push(Operation::new(Opcode::Add, 0)).unwrap();
        b.push(Operation::new(Opcode::Mpy, 1)).unwrap();
        b.push(Operation::new(Opcode::Ldw, 3)).unwrap();
        let i = b.build();
        let sig = i.signature();
        assert_eq!(sig.n_ops, 3);
        assert_eq!(sig.clusters, 0b1011);
        assert_eq!(sig.res.get(0, OpClass::Alu), 1);
        assert_eq!(sig.res.get(1, OpClass::Mul), 1);
        assert_eq!(sig.res.get(3, OpClass::Mem), 1);
    }

    #[test]
    fn ops_sorted_by_cluster_slot() {
        let m = machine();
        let mut b = InstrBuilder::new(&m);
        b.push(Operation::new(Opcode::Add, 3)).unwrap();
        b.push(Operation::new(Opcode::Add, 0)).unwrap();
        b.push(Operation::new(Opcode::Sub, 0)).unwrap();
        let i = b.build();
        let placements: Vec<(u8, u8)> = i.ops().iter().map(|o| (o.cluster, o.slot)).collect();
        let mut sorted = placements.clone();
        sorted.sort();
        assert_eq!(placements, sorted);
    }

    #[test]
    fn nop_is_empty() {
        let i = VliwInstruction::nop();
        assert!(i.is_nop());
        assert_eq!(i.signature(), InstrSignature::EMPTY);
    }

    #[test]
    fn bad_operand_rejected_at_build_time() {
        let m = machine();
        let mut b = InstrBuilder::new(&m);
        let op = Operation::new(Opcode::Add, 0).with_dest(Reg::new(1, 0));
        assert!(matches!(b.push(op), Err(InstrError::BadOperation(_))));
    }

    #[test]
    fn max_latency_reflects_classes() {
        let m = machine();
        let mut b = InstrBuilder::new(&m);
        b.push(Operation::new(Opcode::Add, 0)).unwrap();
        let i = b.build();
        assert_eq!(i.max_latency(&m), 1);
        let mut b = InstrBuilder::new(&m);
        b.push(Operation::new(Opcode::Ldw, 0)).unwrap();
        let i = b.build();
        assert_eq!(i.max_latency(&m), 2);
    }
}
