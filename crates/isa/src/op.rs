//! Opcode set and operation classes.
//!
//! The operation repertoire follows the VEX manual's integer subset: a rich
//! ALU group, a multiply group (VEX exposes 16x16 and 32x16 multiply forms
//! because the Lx/ST200 datapath builds 32x32 products out of them), a
//! load/store group and a branch group. The paper's machine executes ALU
//! operations on any issue slot while multiply, memory and branch operations
//! are tied to fixed slots (paper §2.2, footnote 1) — that asymmetry is what
//! makes operation-level (SMT) merging a routing problem, so the class split
//! here is load-bearing for the whole reproduction.

use std::fmt;

/// Functional-unit class of an operation.
///
/// The class determines which issue slots may execute the operation (see
/// [`crate::MachineConfig`]) and its latency. `Copy` operations (explicit
/// inter-cluster moves inserted by the cluster assigner) execute on ALUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum OpClass {
    /// Single-cycle integer ALU operation; may issue on any slot.
    Alu = 0,
    /// Multiply; restricted to the multiplier slots.
    Mul = 1,
    /// Load/store; restricted to the memory slot(s).
    Mem = 2,
    /// Control transfer; restricted to the branch slot.
    Branch = 3,
}

impl OpClass {
    /// All classes, in the packed-signature byte order.
    pub const ALL: [OpClass; 4] = [OpClass::Alu, OpClass::Mul, OpClass::Mem, OpClass::Branch];

    /// Stable index used by [`crate::ResourceVec`] byte packing.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short lowercase mnemonic tag used by the disassembler.
    pub const fn tag(self) -> &'static str {
        match self {
            OpClass::Alu => "alu",
            OpClass::Mul => "mul",
            OpClass::Mem => "mem",
            OpClass::Branch => "br",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

macro_rules! opcodes {
    ($( $(#[$meta:meta])* $name:ident => ($class:ident, $mn:literal) ),+ $(,)?) => {
        /// VEX-flavoured operation opcode.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(u8)]
        pub enum Opcode {
            $( $(#[$meta])* $name, )+
        }

        impl Opcode {
            /// Every opcode in declaration order.
            pub const ALL: &'static [Opcode] = &[ $(Opcode::$name),+ ];

            /// Functional-unit class executing this opcode.
            #[inline]
            pub const fn class(self) -> OpClass {
                match self {
                    $( Opcode::$name => OpClass::$class, )+
                }
            }

            /// Assembly mnemonic.
            pub const fn mnemonic(self) -> &'static str {
                match self {
                    $( Opcode::$name => $mn, )+
                }
            }
        }
    };
}

opcodes! {
    // ---- ALU group (any slot, 1 cycle) -------------------------------
    /// Integer addition.
    Add => (Alu, "add"),
    /// Integer subtraction.
    Sub => (Alu, "sub"),
    /// Reverse subtraction (`imm - src`), a VEX staple.
    Rsub => (Alu, "rsub"),
    /// Bitwise AND.
    And => (Alu, "and"),
    /// Bitwise AND with complemented second source.
    Andc => (Alu, "andc"),
    /// Bitwise OR.
    Or => (Alu, "or"),
    /// Bitwise OR with complemented second source.
    Orc => (Alu, "orc"),
    /// Bitwise XOR.
    Xor => (Alu, "xor"),
    /// Shift left.
    Shl => (Alu, "shl"),
    /// Logical shift right.
    Shr => (Alu, "shr"),
    /// Arithmetic shift right.
    Shru => (Alu, "shru"),
    /// Shift-left-1 and add (address arithmetic idiom).
    Sh1add => (Alu, "sh1add"),
    /// Shift-left-2 and add.
    Sh2add => (Alu, "sh2add"),
    /// Shift-left-3 and add.
    Sh3add => (Alu, "sh3add"),
    /// Shift-left-4 and add.
    Sh4add => (Alu, "sh4add"),
    /// Signed minimum.
    Min => (Alu, "min"),
    /// Signed maximum.
    Max => (Alu, "max"),
    /// Unsigned minimum.
    Minu => (Alu, "minu"),
    /// Unsigned maximum.
    Maxu => (Alu, "maxu"),
    /// Register/immediate move.
    Mov => (Alu, "mov"),
    /// Compare equal (writes a 1-bit predicate register value).
    CmpEq => (Alu, "cmpeq"),
    /// Compare not-equal.
    CmpNe => (Alu, "cmpne"),
    /// Compare signed less-than.
    CmpLt => (Alu, "cmplt"),
    /// Compare signed less-or-equal.
    CmpLe => (Alu, "cmple"),
    /// Compare signed greater-than.
    CmpGt => (Alu, "cmpgt"),
    /// Compare signed greater-or-equal.
    CmpGe => (Alu, "cmpge"),
    /// Compare unsigned less-than.
    CmpLtu => (Alu, "cmpltu"),
    /// Compare unsigned greater-or-equal.
    CmpGeu => (Alu, "cmpgeu"),
    /// Conditional select `dst = p ? a : b` (VEX `slct`).
    Slct => (Alu, "slct"),
    /// Sign-extend byte.
    Sxtb => (Alu, "sxtb"),
    /// Sign-extend halfword.
    Sxth => (Alu, "sxth"),
    /// Zero-extend byte.
    Zxtb => (Alu, "zxtb"),
    /// Zero-extend halfword.
    Zxth => (Alu, "zxth"),
    /// Explicit inter-cluster copy inserted by the cluster assigner.
    Copy => (Alu, "copy"),

    // ---- Multiply group (multiplier slots, 2 cycles) ------------------
    /// 16x16 multiply, low halves.
    Mpyll => (Mul, "mpyll"),
    /// 16x16 multiply, low x high.
    Mpylh => (Mul, "mpylh"),
    /// 16x16 multiply, high halves.
    Mpyhh => (Mul, "mpyhh"),
    /// 32x16 multiply, low part.
    Mpyl => (Mul, "mpyl"),
    /// 32x16 multiply, high part.
    Mpyh => (Mul, "mpyh"),
    /// Full 32x32 multiply (pseudo-op the compiler expands or keeps whole).
    Mpy => (Mul, "mpy"),

    // ---- Memory group (load/store slot, 2 cycles) ----------------------
    /// Load word.
    Ldw => (Mem, "ldw"),
    /// Load halfword (signed).
    Ldh => (Mem, "ldh"),
    /// Load halfword (unsigned).
    Ldhu => (Mem, "ldhu"),
    /// Load byte (signed).
    Ldb => (Mem, "ldb"),
    /// Load byte (unsigned).
    Ldbu => (Mem, "ldbu"),
    /// Store word.
    Stw => (Mem, "stw"),
    /// Store halfword.
    Sth => (Mem, "sth"),
    /// Store byte.
    Stb => (Mem, "stb"),
    /// Software prefetch (touches the cache, no destination register).
    Pft => (Mem, "pft"),

    // ---- Branch group (branch slot, resolves next cycle) ---------------
    /// Conditional branch on predicate true.
    Br => (Branch, "br"),
    /// Conditional branch on predicate false.
    Brf => (Branch, "brf"),
    /// Unconditional jump.
    Goto => (Branch, "goto"),
    /// Call (modelled as an always-taken control transfer).
    Call => (Branch, "call"),
    /// Return (modelled as an always-taken control transfer).
    Return => (Branch, "return"),
}

impl Opcode {
    /// True for operations that read memory.
    #[inline]
    pub const fn is_load(self) -> bool {
        matches!(
            self,
            Opcode::Ldw | Opcode::Ldh | Opcode::Ldhu | Opcode::Ldb | Opcode::Ldbu
        )
    }

    /// True for operations that write memory.
    #[inline]
    pub const fn is_store(self) -> bool {
        matches!(self, Opcode::Stw | Opcode::Sth | Opcode::Stb)
    }

    /// True for any memory-class operation (including prefetch).
    #[inline]
    pub const fn is_mem(self) -> bool {
        matches!(self.class(), OpClass::Mem)
    }

    /// True for control transfers that are *always* taken when executed.
    #[inline]
    pub const fn is_unconditional_branch(self) -> bool {
        matches!(self, Opcode::Goto | Opcode::Call | Opcode::Return)
    }

    /// True for conditional control transfers.
    #[inline]
    pub const fn is_conditional_branch(self) -> bool {
        matches!(self, Opcode::Br | Opcode::Brf)
    }

    /// Number of register sources the opcode conventionally reads.
    pub const fn n_srcs(self) -> usize {
        match self {
            Opcode::Mov | Opcode::Sxtb | Opcode::Sxth | Opcode::Zxtb | Opcode::Zxth => 1,
            Opcode::Copy => 1,
            Opcode::Slct => 3,
            Opcode::Goto | Opcode::Call | Opcode::Return => 0,
            Opcode::Br | Opcode::Brf => 1,
            Opcode::Pft => 1,
            _ if self.is_load() => 1,
            _ if self.is_store() => 2,
            _ => 2,
        }
    }

    /// Whether the opcode writes a destination register.
    pub const fn has_dest(self) -> bool {
        !matches!(
            self,
            Opcode::Stw
                | Opcode::Sth
                | Opcode::Stb
                | Opcode::Pft
                | Opcode::Br
                | Opcode::Brf
                | Opcode::Goto
                | Opcode::Call
                | Opcode::Return
        )
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_partition_is_total() {
        for &op in Opcode::ALL {
            // Every opcode maps to exactly one class and a nonempty mnemonic.
            let _ = op.class();
            assert!(!op.mnemonic().is_empty());
        }
    }

    #[test]
    fn loads_and_stores_are_mem_class() {
        for &op in Opcode::ALL {
            if op.is_load() || op.is_store() {
                assert_eq!(op.class(), OpClass::Mem, "{op}");
            }
        }
    }

    #[test]
    fn branch_opcodes_are_branch_class() {
        for &op in Opcode::ALL {
            if op.is_conditional_branch() || op.is_unconditional_branch() {
                assert_eq!(op.class(), OpClass::Branch, "{op}");
            }
        }
    }

    #[test]
    fn stores_have_no_dest() {
        assert!(!Opcode::Stw.has_dest());
        assert!(!Opcode::Br.has_dest());
        assert!(Opcode::Add.has_dest());
        assert!(Opcode::Ldw.has_dest());
    }

    #[test]
    fn class_indices_are_stable() {
        assert_eq!(OpClass::Alu.index(), 0);
        assert_eq!(OpClass::Mul.index(), 1);
        assert_eq!(OpClass::Mem.index(), 2);
        assert_eq!(OpClass::Branch.index(), 3);
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::ALL {
            assert!(
                seen.insert(op.mnemonic()),
                "duplicate mnemonic {}",
                op.mnemonic()
            );
        }
    }
}
