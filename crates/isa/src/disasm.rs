//! Human-readable rendering of instructions, in the style of the paper's
//! Figure 1: one row per instruction, one column group per cluster, `-` for
//! vacant slots.

use crate::instr::VliwInstruction;
use crate::machine::MachineConfig;
use std::fmt::Write as _;

/// Render one instruction as a slot grid: `[add sub - - | - mpy ld - | ...]`.
pub fn render_instr(machine: &MachineConfig, instr: &VliwInstruction) -> String {
    let mut grid: Vec<Vec<Option<&str>>> = (0..machine.n_clusters)
        .map(|_| vec![None; machine.issue_per_cluster as usize])
        .collect();
    for op in instr.ops() {
        grid[op.cluster as usize][op.slot as usize] = Some(op.opcode.mnemonic());
    }
    let mut out = String::from("[");
    for (c, slots) in grid.iter().enumerate() {
        if c > 0 {
            out.push_str(" | ");
        }
        for (s, op) in slots.iter().enumerate() {
            if s > 0 {
                out.push(' ');
            }
            out.push_str(op.unwrap_or("-"));
        }
    }
    out.push(']');
    out
}

/// Render a full operation listing (one line per operation) with cluster and
/// slot placements — useful when debugging schedules.
pub fn render_verbose(machine: &MachineConfig, instr: &VliwInstruction) -> String {
    let mut out = String::new();
    if instr.is_nop() {
        out.push_str("  nop\n");
        return out;
    }
    for op in instr.ops() {
        let _ = writeln!(out, "  c{}.s{}: {}", op.cluster, op.slot, op);
    }
    let _ = writeln!(out, "  ;; {}", instr.signature());
    let _ = machine;
    out
}

/// Render a block of instructions, one grid row each, prefixed with indices.
pub fn render_block(machine: &MachineConfig, instrs: &[VliwInstruction]) -> String {
    let mut out = String::new();
    for (i, instr) in instrs.iter().enumerate() {
        let _ = writeln!(out, "{i:4}: {}", render_instr(machine, instr));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::InstrBuilder;
    use crate::op::Opcode;
    use crate::operation::Operation;

    #[test]
    fn grid_rendering_marks_vacant_slots() {
        let m = MachineConfig::new(2, 2).unwrap();
        let mut b = InstrBuilder::new(&m);
        b.push(Operation::new(Opcode::Add, 0)).unwrap();
        let i = b.build();
        let s = render_instr(&m, &i);
        assert_eq!(s, "[add - | - -]");
    }

    #[test]
    fn verbose_listing_contains_ops() {
        let m = MachineConfig::paper_baseline();
        let mut b = InstrBuilder::new(&m);
        b.push(Operation::new(Opcode::Mpy, 1)).unwrap();
        let i = b.build();
        let s = render_verbose(&m, &i);
        assert!(s.contains("c1.s0: mpy"));
        let nop = render_verbose(&m, &VliwInstruction::nop());
        assert!(nop.contains("nop"));
    }

    #[test]
    fn block_rendering_numbers_rows() {
        let m = MachineConfig::new(2, 2).unwrap();
        let i = VliwInstruction::nop();
        let s = render_block(&m, &[i.clone(), i]);
        assert!(s.contains("   0: "));
        assert!(s.contains("   1: "));
    }
}
