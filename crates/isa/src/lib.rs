//! # vliw-isa — VEX-like clustered VLIW ISA model
//!
//! This crate models the instruction-set architecture of the clustered VLIW
//! machine evaluated in *Gupta, Sánchez, Llosa — "Thread Merging Schemes for
//! Multithreaded Clustered VLIW Processors" (ICPP 2009)*: a VEX/Lx-style
//! machine with `M` clusters, each cluster owning a private register file and
//! `W` issue slots.
//!
//! The pieces other crates build on:
//!
//! * [`MachineConfig`] — cluster/slot/functional-unit geometry, fixed-slot
//!   constraints, operation latencies and branch penalty (paper §5.1).
//! * [`MachineSpec`] — named, parsable geometry identities (presets like
//!   `paper-4x4` plus a `CxI[+muls+mems]` grammar) that lower to validated
//!   configs; what experiment grids and serialized exhibits carry.
//! * [`Opcode`] / [`Operation`] — VEX-flavoured operation set with ALU,
//!   multiply, memory and branch classes.
//! * [`VliwInstruction`] and its checked [`InstrBuilder`] — one "long
//!   instruction" = a set of operations placed on (cluster, slot) positions.
//! * [`InstrSignature`] / [`ResourceVec`] — densely packed per-cluster
//!   resource usage summaries. These are what the merge-control hardware of
//!   the paper inspects, and what `vliw-core` uses to decide whether two
//!   instructions can merge at operation level (SMT) or cluster level (CSMT).
//!
//! Everything is plain, deterministic, cheap-to-copy data: the simulator
//! touches these structures hundreds of millions of times per run.

#![deny(missing_docs)]

pub mod disasm;
pub mod encode;
pub mod instr;
pub mod machine;
pub mod op;
pub mod operation;
pub mod signature;
pub mod spec;

pub use instr::{InstrBuilder, InstrError, VliwInstruction};
pub use machine::{MachineConfig, MachineError, SlotPlan};
pub use op::{OpClass, Opcode};
pub use operation::{BranchInfo, MemInfo, Operation, Reg};
pub use signature::{ClusterMask, InstrSignature, ResourceCaps, ResourceVec};
pub use spec::MachineSpec;

/// Hard upper bound on clusters supported by the packed signature types.
pub const MAX_CLUSTERS: usize = 8;
/// Hard upper bound on issue slots per cluster.
pub const MAX_ISSUE: usize = 8;
