//! Concrete operations: opcode + registers + placement + timing annotations.

use crate::op::{OpClass, Opcode};
use std::fmt;

/// A register reference inside a cluster register file.
///
/// Clustered VLIWs have one architectural register file per cluster; an
/// operation may only name registers of the cluster it executes on (the
/// cluster assigner inserts [`Opcode::Copy`] operations to move values
/// between files).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg {
    /// Owning cluster.
    pub cluster: u8,
    /// Register index within the cluster file.
    pub index: u16,
}

impl Reg {
    /// Construct a register reference.
    #[inline]
    pub const fn new(cluster: u8, index: u16) -> Self {
        Reg { cluster, index }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$r{}.{}", self.cluster, self.index)
    }
}

/// Timing-relevant annotation for a memory operation.
///
/// The simulator is trace-driven: it does not interpret data values, but it
/// must generate a realistic address stream to drive the data cache. Each
/// static memory operation carries the id of the address stream it draws
/// from (streams are owned by the executing thread, see `vliw-workloads`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemInfo {
    /// Address stream this operation draws addresses from.
    pub stream: u16,
    /// True for stores (write accesses), false for loads/prefetches.
    pub is_store: bool,
}

/// Timing-relevant annotation for a branch operation.
///
/// `taken_permille` drives the simulator's deterministic branch-outcome
/// draw; `target` names the successor basic block taken branches redirect
/// to (the fall-through successor is implicit in the block layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Probability the branch is taken, in 1/1000 units (0..=1000).
    pub taken_permille: u16,
    /// Block id of the taken-path successor.
    pub target: u32,
}

/// One operation (one "syllable") of a VLIW instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Operation {
    /// What the operation does.
    pub opcode: Opcode,
    /// Cluster the operation executes on.
    pub cluster: u8,
    /// Issue slot within the cluster (filled in by the scheduler/builder).
    pub slot: u8,
    /// Destination register, if the opcode writes one.
    pub dest: Option<Reg>,
    /// Source registers (up to 3; unused entries are `None`).
    pub srcs: [Option<Reg>; 3],
    /// Immediate operand, if any.
    pub imm: Option<i32>,
    /// Memory annotation for mem-class opcodes.
    pub mem: Option<MemInfo>,
    /// Branch annotation for branch-class opcodes.
    pub branch: Option<BranchInfo>,
}

impl Operation {
    /// A bare operation on `cluster` with no operands wired yet.
    pub fn new(opcode: Opcode, cluster: u8) -> Self {
        Operation {
            opcode,
            cluster,
            slot: 0,
            dest: None,
            srcs: [None; 3],
            imm: None,
            mem: None,
            branch: None,
        }
    }

    /// Set the destination register.
    pub fn with_dest(mut self, dest: Reg) -> Self {
        self.dest = Some(dest);
        self
    }

    /// Set the source registers from a slice (at most 3).
    pub fn with_srcs(mut self, srcs: &[Reg]) -> Self {
        assert!(srcs.len() <= 3, "at most 3 sources");
        for (i, r) in srcs.iter().enumerate() {
            self.srcs[i] = Some(*r);
        }
        self
    }

    /// Set the immediate operand.
    pub fn with_imm(mut self, imm: i32) -> Self {
        self.imm = Some(imm);
        self
    }

    /// Attach a memory annotation (must be a mem-class opcode).
    pub fn with_mem(mut self, mem: MemInfo) -> Self {
        debug_assert_eq!(self.opcode.class(), OpClass::Mem);
        self.mem = Some(mem);
        self
    }

    /// Attach a branch annotation (must be a branch-class opcode).
    pub fn with_branch(mut self, branch: BranchInfo) -> Self {
        debug_assert_eq!(self.opcode.class(), OpClass::Branch);
        self.branch = Some(branch);
        self
    }

    /// Functional-unit class of this operation.
    #[inline]
    pub fn class(&self) -> OpClass {
        self.opcode.class()
    }

    /// Number of register sources actually wired.
    pub fn n_srcs(&self) -> usize {
        self.srcs.iter().filter(|s| s.is_some()).count()
    }

    /// Iterator over wired source registers.
    pub fn src_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().filter_map(|s| *s)
    }

    /// Check intra-operation invariants: operands live on the executing
    /// cluster, annotations match the opcode class.
    ///
    /// [`Opcode::Copy`] is the one exception: it executes on the *source*
    /// cluster (occupying an issue slot and the inter-cluster bus there)
    /// and writes a register in another cluster's file.
    pub fn check(&self) -> Result<(), String> {
        if let Some(d) = self.dest {
            if d.cluster != self.cluster && self.opcode != Opcode::Copy {
                return Err(format!(
                    "dest {d} not on executing cluster {}",
                    self.cluster
                ));
            }
            if !self.opcode.has_dest() {
                return Err(format!("{} cannot write a destination", self.opcode));
            }
        }
        for s in self.src_regs() {
            if s.cluster != self.cluster {
                return Err(format!("src {s} not on executing cluster {}", self.cluster));
            }
        }
        if self.mem.is_some() && self.class() != OpClass::Mem {
            return Err(format!("mem annotation on non-mem opcode {}", self.opcode));
        }
        if self.branch.is_some() && self.class() != OpClass::Branch {
            return Err(format!(
                "branch annotation on non-branch opcode {}",
                self.opcode
            ));
        }
        if let Some(b) = self.branch {
            if b.taken_permille > 1000 {
                return Err(format!("taken_permille {} > 1000", b.taken_permille));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        if let Some(d) = self.dest {
            write!(f, " {d} =")?;
        }
        for s in self.src_regs() {
            write!(f, " {s}")?;
        }
        if let Some(i) = self.imm {
            write!(f, " #{i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_wires_operands() {
        let op = Operation::new(Opcode::Add, 2)
            .with_dest(Reg::new(2, 5))
            .with_srcs(&[Reg::new(2, 1), Reg::new(2, 2)])
            .with_imm(4);
        assert_eq!(op.n_srcs(), 2);
        assert_eq!(op.dest, Some(Reg::new(2, 5)));
        assert_eq!(op.imm, Some(4));
        assert!(op.check().is_ok());
    }

    #[test]
    fn cross_cluster_operand_rejected() {
        let op = Operation::new(Opcode::Add, 0).with_dest(Reg::new(1, 0));
        assert!(op.check().is_err());
        let op = Operation::new(Opcode::Add, 0).with_srcs(&[Reg::new(3, 0)]);
        assert!(op.check().is_err());
    }

    #[test]
    fn annotation_class_mismatch_rejected() {
        let mut op = Operation::new(Opcode::Add, 0);
        op.mem = Some(MemInfo {
            stream: 0,
            is_store: false,
        });
        assert!(op.check().is_err());

        let mut op = Operation::new(Opcode::Ldw, 0);
        op.branch = Some(BranchInfo {
            taken_permille: 500,
            target: 1,
        });
        assert!(op.check().is_err());
    }

    #[test]
    fn store_with_dest_rejected() {
        let op = Operation::new(Opcode::Stw, 0).with_dest(Reg::new(0, 1));
        assert!(op.check().is_err());
    }

    #[test]
    fn branch_probability_bounds() {
        let op = Operation::new(Opcode::Br, 0).with_branch(BranchInfo {
            taken_permille: 1001,
            target: 0,
        });
        assert!(op.check().is_err());
    }

    #[test]
    fn display_formats() {
        let op = Operation::new(Opcode::Add, 1)
            .with_dest(Reg::new(1, 3))
            .with_srcs(&[Reg::new(1, 1)]);
        assert_eq!(format!("{op}"), "add $r1.3 = $r1.1");
    }
}
