//! Machine configuration: cluster geometry, slot plan, latencies.
//!
//! The paper's base machine (§5.1): 4 clusters, 4-issue per cluster
//! (16-issue total), per cluster 4 ALUs + 2 multipliers + 1 load/store unit,
//! branch unit on cluster 0, multiply/memory latency 2 cycles, everything
//! else 1 cycle, 2-cycle taken-branch penalty, no branch predictor.

use crate::op::OpClass;
use crate::{MAX_CLUSTERS, MAX_ISSUE};
use std::fmt;

/// Errors produced when validating a [`MachineConfig`] or parsing a
/// [`crate::spec::MachineSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// Cluster count outside `1..=MAX_CLUSTERS`.
    BadClusterCount(u8),
    /// Issue width outside `1..=MAX_ISSUE`.
    BadIssueWidth(u8),
    /// More fixed-slot functional units than issue slots.
    FixedUnitsExceedIssue {
        /// multipliers + memory units + branch unit requested
        fixed: u8,
        /// issue slots available
        issue: u8,
    },
    /// A latency of zero cycles was configured.
    ZeroLatency(OpClass),
    /// A machine-spec spelling matched neither a preset name nor the
    /// `CxI[+muls+mems]` grammar (see [`crate::spec::MachineSpec`]).
    UnknownSpec(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::BadClusterCount(n) => {
                write!(f, "cluster count {n} outside 1..={MAX_CLUSTERS}")
            }
            MachineError::BadIssueWidth(w) => {
                write!(f, "issue width {w} outside 1..={MAX_ISSUE}")
            }
            MachineError::FixedUnitsExceedIssue { fixed, issue } => write!(
                f,
                "fixed-slot units ({fixed}) exceed issue width ({issue}); \
                 slot classes must occupy disjoint slots"
            ),
            MachineError::ZeroLatency(c) => write!(f, "latency of class {c} must be >= 1"),
            MachineError::UnknownSpec(s) => {
                write!(f, "unknown machine spec {s:?}; valid specs: ")?;
                for p in crate::spec::MachineSpec::presets() {
                    write!(f, "{p}, ")?;
                }
                write!(f, "or CxI[+muls+mems] (e.g. 4x4+2+1)")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// Which issue slots of a cluster each operation class may occupy.
///
/// The plan is derived from the functional-unit counts and is the concrete
/// form of the paper's footnote 1: "while ALU operations may be executed at
/// any issue slot, operations like memory load/store, multiply and branch can
/// only be executed at their fixed slots". Fixed-slot classes are assigned
/// *disjoint* slot ranges (multipliers first, then memory units, branch unit
/// in the last slot), which makes SMT merge feasibility a pure counting
/// problem — the property the paper's SMT merge-control hardware relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotPlan {
    /// Bitmask of slots usable by multiply operations.
    pub mul_slots: u8,
    /// Bitmask of slots usable by memory operations.
    pub mem_slots: u8,
    /// Bitmask of slots usable by branch operations (empty on clusters
    /// without a branch unit).
    pub branch_slot: u8,
    /// Bitmask of all slots (ALU operations may use any of them).
    pub all_slots: u8,
}

impl SlotPlan {
    /// Slot mask available to a given class on this cluster.
    #[inline]
    pub fn slots_for(&self, class: OpClass) -> u8 {
        match class {
            OpClass::Alu => self.all_slots,
            OpClass::Mul => self.mul_slots,
            OpClass::Mem => self.mem_slots,
            OpClass::Branch => self.branch_slot,
        }
    }
}

/// Full description of the simulated machine.
///
/// Construct via [`MachineConfig::paper_baseline`] (the §5.1 machine) or
/// [`MachineConfig::new`] and refine with the builder-style `with_*` methods;
/// every constructor validates the geometry. Hashable, so compiled-image
/// caches can key by the geometry a program was built for.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineConfig {
    /// Number of clusters (1..=8).
    pub n_clusters: u8,
    /// Issue slots per cluster (1..=8).
    pub issue_per_cluster: u8,
    /// Multipliers per cluster (fixed slots).
    pub muls_per_cluster: u8,
    /// Load/store units per cluster (fixed slots).
    pub mems_per_cluster: u8,
    /// Bitmask of clusters owning a branch unit (VEX: cluster 0 only).
    pub branch_clusters: u8,
    /// General-purpose registers per cluster register file.
    pub regs_per_cluster: u16,
    /// Latency in cycles per operation class.
    pub latency: [u8; 4],
    /// Extra cycles lost after a taken branch (squash penalty, paper: 2).
    pub taken_branch_penalty: u8,
}

impl MachineConfig {
    /// The paper's evaluation machine: 4 clusters x 4-issue, 2 multipliers
    /// and 1 load/store unit per cluster, branch unit on cluster 0,
    /// mul/mem latency 2, taken-branch penalty 2 (paper §5.1).
    pub fn paper_baseline() -> Self {
        Self::new(4, 4).expect("paper baseline geometry is valid")
    }

    /// A machine with `n_clusters` clusters of `issue` slots, VEX-style
    /// functional-unit mix scaled to the issue width.
    ///
    /// Wide clusters (4+ slots) get the paper's mix: 2 multipliers, 1
    /// load/store unit, branch unit on cluster 0. Narrower clusters scale
    /// the mix down so the fixed-slot classes stay disjoint: 3-issue gets
    /// 1 multiplier + 1 memory unit + branch; 2-issue gets 1 multiplier +
    /// 1 memory unit and *no* branch unit; 1-issue is ALU-only.
    pub fn new(n_clusters: u8, issue: u8) -> Result<Self, MachineError> {
        // Branch capability exists on every cluster's last slot: under the
        // per-context cluster renaming of the multithreaded machine, each
        // context's (virtual) branch cluster may land on any physical
        // cluster. The compiler still emits branches on virtual cluster 0
        // only, as VEX does.
        let all = if n_clusters >= 8 {
            0xFF
        } else {
            (1u8 << n_clusters) - 1
        };
        let (muls, mems, branch_clusters) = match issue {
            0 => (0, 0, 0),
            1 => (0, 0, 0),
            2 => (1, 1, 0),
            3 => (1, 1, all),
            _ => (2, 1, all),
        };
        let cfg = MachineConfig {
            n_clusters,
            issue_per_cluster: issue,
            muls_per_cluster: muls,
            mems_per_cluster: mems,
            branch_clusters,
            regs_per_cluster: 64,
            latency: [1, 2, 2, 1],
            taken_branch_penalty: 2,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Override the functional-unit mix.
    pub fn with_units(mut self, muls: u8, mems: u8) -> Result<Self, MachineError> {
        self.muls_per_cluster = muls;
        self.mems_per_cluster = mems;
        self.validate()?;
        Ok(self)
    }

    /// Override the set of clusters owning a branch unit.
    pub fn with_branch_clusters(mut self, mask: u8) -> Result<Self, MachineError> {
        self.branch_clusters = mask;
        self.validate()?;
        Ok(self)
    }

    /// Override the taken-branch penalty.
    pub fn with_branch_penalty(mut self, cycles: u8) -> Self {
        self.taken_branch_penalty = cycles;
        self
    }

    /// Check geometry invariants.
    pub fn validate(&self) -> Result<(), MachineError> {
        if self.n_clusters == 0 || self.n_clusters as usize > MAX_CLUSTERS {
            return Err(MachineError::BadClusterCount(self.n_clusters));
        }
        if self.issue_per_cluster == 0 || self.issue_per_cluster as usize > MAX_ISSUE {
            return Err(MachineError::BadIssueWidth(self.issue_per_cluster));
        }
        // Worst case fixed-unit pressure: a branch-owning cluster.
        let fixed =
            self.muls_per_cluster + self.mems_per_cluster + u8::from(self.branch_clusters != 0);
        if fixed > self.issue_per_cluster {
            return Err(MachineError::FixedUnitsExceedIssue {
                fixed,
                issue: self.issue_per_cluster,
            });
        }
        for class in OpClass::ALL {
            if self.latency[class.index()] == 0 {
                return Err(MachineError::ZeroLatency(class));
            }
        }
        Ok(())
    }

    /// Total machine issue width (`clusters * issue_per_cluster`).
    #[inline]
    pub fn total_issue(&self) -> usize {
        self.n_clusters as usize * self.issue_per_cluster as usize
    }

    /// Latency of an operation class in cycles.
    #[inline]
    pub fn latency_of(&self, class: OpClass) -> u8 {
        self.latency[class.index()]
    }

    /// Whether `cluster` owns a branch unit.
    #[inline]
    pub fn cluster_has_branch(&self, cluster: u8) -> bool {
        self.branch_clusters & (1 << cluster) != 0
    }

    /// The slot plan for `cluster`.
    ///
    /// Layout: multipliers occupy the lowest slots, memory units the next
    /// ones, the branch unit (if present on this cluster) the highest slot.
    /// ALUs back every slot. The fixed-class slot sets are disjoint by
    /// construction (guaranteed by [`MachineConfig::validate`]).
    pub fn slot_plan(&self, cluster: u8) -> SlotPlan {
        let w = self.issue_per_cluster;
        let all = mask_lo(w);
        let mul = mask_lo(self.muls_per_cluster);
        let mem = mask_lo(self.mems_per_cluster) << self.muls_per_cluster;
        let br = if self.cluster_has_branch(cluster) {
            1u8 << (w - 1)
        } else {
            0
        };
        debug_assert_eq!(mul & mem, 0);
        debug_assert_eq!((mul | mem) & br, 0);
        SlotPlan {
            mul_slots: mul,
            mem_slots: mem,
            branch_slot: br,
            all_slots: all,
        }
    }

    /// Per-cluster capacity of an operation class (how many ops of that
    /// class a single execution packet may carry on `cluster`).
    pub fn class_capacity(&self, cluster: u8, class: OpClass) -> u8 {
        match class {
            OpClass::Alu => self.issue_per_cluster,
            OpClass::Mul => self.muls_per_cluster,
            OpClass::Mem => self.mems_per_cluster,
            OpClass::Branch => u8::from(self.cluster_has_branch(cluster)),
        }
    }
}

#[inline]
fn mask_lo(n: u8) -> u8 {
    if n >= 8 {
        0xFF
    } else {
        (1u8 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_geometry() {
        let m = MachineConfig::paper_baseline();
        assert_eq!(m.n_clusters, 4);
        assert_eq!(m.issue_per_cluster, 4);
        assert_eq!(m.muls_per_cluster, 2);
        assert_eq!(m.mems_per_cluster, 1);
        assert_eq!(m.total_issue(), 16);
        assert_eq!(m.taken_branch_penalty, 2);
        assert_eq!(m.latency_of(OpClass::Mul), 2);
        assert_eq!(m.latency_of(OpClass::Mem), 2);
        assert_eq!(m.latency_of(OpClass::Alu), 1);
    }

    #[test]
    fn slot_plan_disjoint_fixed_classes() {
        let m = MachineConfig::paper_baseline();
        let p = m.slot_plan(0);
        assert_eq!(p.mul_slots, 0b0011);
        assert_eq!(p.mem_slots, 0b0100);
        assert_eq!(p.branch_slot, 0b1000);
        assert_eq!(p.all_slots, 0b1111);
        // Every cluster carries branch capability (per-context cluster
        // renaming may land any context's branch cluster anywhere).
        let p1 = m.slot_plan(1);
        assert_eq!(p1.branch_slot, 0b1000);
        // A cluster-0-only machine (no renaming) drops it elsewhere.
        let m1 = MachineConfig::paper_baseline()
            .with_branch_clusters(0b1)
            .unwrap();
        assert_eq!(m1.slot_plan(1).branch_slot, 0);
    }

    #[test]
    fn eight_issue_four_cluster_example_from_fig1() {
        // Figure 1 of the paper uses a 4-cluster 2-issue machine.
        let m = MachineConfig::new(4, 2).unwrap();
        assert_eq!(m.total_issue(), 8);
        let p = m.slot_plan(1);
        assert_eq!(p.all_slots, 0b11);
        assert_eq!(p.mul_slots, 0b01);
        assert_eq!(p.mem_slots, 0b10);
        // 2-issue clusters have no room for a dedicated branch slot.
        assert_eq!(m.branch_clusters, 0);
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(matches!(
            MachineConfig::new(0, 4),
            Err(MachineError::BadClusterCount(0))
        ));
        assert!(matches!(
            MachineConfig::new(4, 0),
            Err(MachineError::BadIssueWidth(0))
        ));
        let too_many_units = MachineConfig::paper_baseline().with_units(4, 4);
        assert!(matches!(
            too_many_units,
            Err(MachineError::FixedUnitsExceedIssue { .. })
        ));
    }

    #[test]
    fn class_capacities_match_units() {
        let m = MachineConfig::paper_baseline();
        assert_eq!(m.class_capacity(0, OpClass::Alu), 4);
        assert_eq!(m.class_capacity(0, OpClass::Mul), 2);
        assert_eq!(m.class_capacity(0, OpClass::Mem), 1);
        assert_eq!(m.class_capacity(0, OpClass::Branch), 1);
        assert_eq!(m.class_capacity(3, OpClass::Branch), 1);
        let m1 = MachineConfig::paper_baseline()
            .with_branch_clusters(0b1)
            .unwrap();
        assert_eq!(m1.class_capacity(3, OpClass::Branch), 0);
    }

    #[test]
    fn branch_cluster_mask_roundtrip() {
        let m = MachineConfig::paper_baseline()
            .with_branch_clusters(0b0101)
            .unwrap();
        assert!(m.cluster_has_branch(0));
        assert!(!m.cluster_has_branch(1));
        assert!(m.cluster_has_branch(2));
    }
}
