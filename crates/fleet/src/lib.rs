//! # vliw-fleet — machine fleets behind a deterministic dispatcher
//!
//! The paper evaluates merge schemes on *one* clustered VLIW machine; the
//! fleet layer scales that out: a [`FleetSpec`] names a set of (possibly
//! heterogeneous) [`MachineSpec`] geometries, and a [`Dispatcher`] decides,
//! per arriving thread, which machine's admission queue receives it —
//! two-level scheduling, with the per-machine OS scheduler below and the
//! fleet dispatcher above.
//!
//! This crate is dependency-free (only `vliw-isa` for the machine grammar):
//! it owns the *grammar* ([`FleetSpec`], with `Display`/`FromStr`
//! round-trips like the machine and traffic grammars), the *policies*
//! ([`DispatcherSpec`] naming the deterministic built-ins, [`Dispatcher`]
//! for the decision interface) and the *accounting shapes*
//! ([`FleetStats`], [`MachineLaneStats`]). The driver that actually
//! advances N `Machine` instances under one arrival process lives in
//! `vliw-sim` (`fleet` module), which depends on this crate.
//!
//! ## Grammar
//!
//! ```text
//! FLEET  := PRESET | ENTRY ("/" ENTRY)*, optionally followed by "@" POLICY
//! ENTRY  := MACHINESPEC ("*" COUNT)?
//! PRESET := "edge"
//! POLICY := "round-robin" | "least-queued" | "affinity"
//! ```
//!
//! Examples: `paper-4x4*4` (four paper baselines, round-robin),
//! `2x8/8x2@least-queued` (one wide + one narrow machine, join the
//! shortest queue), `edge` (the mixed preset: two paper baselines, one
//! wide `2x8`, one narrow `8x2`, geometry-affinity routing).
//!
//! Every policy is deterministic: given the same lane views in the same
//! order, [`Dispatcher::route`] returns the same lane. That is what lets
//! fleet simulations be byte-identical regardless of how many rayon
//! workers advance the machines.

#![deny(missing_docs)]

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use vliw_isa::{MachineError, MachineSpec};

/// Largest per-entry replica count the grammar accepts (`spec*COUNT`).
///
/// A guard rail, not a scaling limit: fleets are simulated in-process, one
/// `Machine` per member, so four-digit counts are a typo, not a plan.
pub const MAX_COUNT_PER_ENTRY: u32 = 64;

/// Errors from parsing or validating a [`FleetSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The spec string was empty (or an entry between `/`s was).
    Empty,
    /// An entry's machine geometry failed to parse.
    Machine(MachineError),
    /// A `*COUNT` suffix was not a positive integer within
    /// [`MAX_COUNT_PER_ENTRY`].
    BadCount(String),
    /// The `@POLICY` suffix named no known dispatcher.
    UnknownPolicy(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Empty => write!(f, "empty fleet spec (expected e.g. \"paper-4x4*2\")"),
            FleetError::Machine(e) => write!(f, "fleet entry: {e}"),
            FleetError::BadCount(s) => write!(
                f,
                "bad fleet count {s:?} (expected 1..={MAX_COUNT_PER_ENTRY})"
            ),
            FleetError::UnknownPolicy(s) => write!(
                f,
                "unknown dispatcher {s:?} (expected one of: round-robin, least-queued, affinity)"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<MachineError> for FleetError {
    fn from(e: MachineError) -> Self {
        FleetError::Machine(e)
    }
}

/// Named deterministic dispatch policies.
///
/// The spec is the *name*; [`DispatcherSpec::build`] instantiates the
/// (possibly stateful) [`Dispatcher`] it denotes. Like
/// [`vliw_isa::MachineSpec`] and the scheduler specs, this keeps plan keys
/// `Copy + Eq + Hash` while the policy objects themselves stay boxed and
/// mutable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DispatcherSpec {
    /// Cycle through the machines in fleet order, one arrival each.
    #[default]
    RoundRobin,
    /// Send each arrival to the machine with the fewest queued + in-flight
    /// threads (ties broken by fleet order).
    LeastQueued,
    /// Geometry affinity: route wide threads (high static ops/instruction)
    /// to machines with wide clusters, narrow threads to narrow ones; ties
    /// broken by load, then fleet order.
    Affinity,
}

impl DispatcherSpec {
    /// All built-in policies, in documentation order.
    pub const fn all() -> [DispatcherSpec; 3] {
        [
            DispatcherSpec::RoundRobin,
            DispatcherSpec::LeastQueued,
            DispatcherSpec::Affinity,
        ]
    }

    /// The policy's grammar name (what `@POLICY` accepts).
    pub const fn name(&self) -> &'static str {
        match self {
            DispatcherSpec::RoundRobin => "round-robin",
            DispatcherSpec::LeastQueued => "least-queued",
            DispatcherSpec::Affinity => "affinity",
        }
    }

    /// Instantiate the policy this spec names.
    pub fn build(&self) -> Box<dyn Dispatcher + Send> {
        match self {
            DispatcherSpec::RoundRobin => Box::new(RoundRobin::default()),
            DispatcherSpec::LeastQueued => Box::new(LeastQueued),
            DispatcherSpec::Affinity => Box::new(Affinity),
        }
    }
}

impl fmt::Display for DispatcherSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for DispatcherSpec {
    type Err = FleetError;

    fn from_str(s: &str) -> Result<Self, FleetError> {
        let norm = s.trim().to_ascii_lowercase().replace('_', "-");
        DispatcherSpec::all()
            .into_iter()
            .find(|p| p.name() == norm)
            .ok_or_else(|| FleetError::UnknownPolicy(s.to_string()))
    }
}

/// A fleet: an ordered list of `(geometry, replica count)` entries plus the
/// dispatch policy that routes arrivals across them.
///
/// `Display` and `FromStr` round-trip; mixed-preset fleets canonicalize to
/// their preset name (the `edge` fleet prints as `edge`), and the default
/// policy of a spelling is omitted from its rendering, mirroring how
/// [`MachineSpec`] custom geometries canonicalize to preset names.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FleetSpec {
    /// `(geometry, replicas)` in fleet order. Machine index `i` of the
    /// running fleet is the `i`-th machine of this list expanded.
    entries: Arc<[(MachineSpec, u32)]>,
    /// The dispatch policy routing arrivals across the machines.
    pub dispatcher: DispatcherSpec,
}

/// The `edge` preset's entries: two paper baselines fronted by one wide
/// and one narrow machine — the smallest fleet where geometry-affinity
/// routing has real choices to make.
const EDGE_ENTRIES: [(MachineSpec, u32); 3] = [
    (MachineSpec::Paper4x4, 2),
    (MachineSpec::Wide2x8, 1),
    (MachineSpec::Narrow8x2, 1),
];

impl FleetSpec {
    /// Build a fleet from explicit entries. Zero-count entries are
    /// rejected, an empty list is [`FleetError::Empty`].
    pub fn new(
        entries: impl Into<Vec<(MachineSpec, u32)>>,
        dispatcher: DispatcherSpec,
    ) -> Result<FleetSpec, FleetError> {
        let entries: Vec<(MachineSpec, u32)> = entries.into();
        if entries.is_empty() {
            return Err(FleetError::Empty);
        }
        for &(spec, count) in &entries {
            if count == 0 || count > MAX_COUNT_PER_ENTRY {
                return Err(FleetError::BadCount(count.to_string()));
            }
            // Validate the geometry eagerly so a fleet never carries an
            // unbuildable machine into a running plan.
            spec.try_config()?;
        }
        Ok(FleetSpec {
            entries: entries.into(),
            dispatcher,
        })
    }

    /// A homogeneous fleet: `count` replicas of one geometry.
    pub fn homogeneous(
        machine: MachineSpec,
        count: u32,
        dispatcher: DispatcherSpec,
    ) -> Result<FleetSpec, FleetError> {
        FleetSpec::new(vec![(machine, count)], dispatcher)
    }

    /// The mixed `edge` preset (see [`FleetSpec`] docs): `paper-4x4*2/2x8/
    /// 8x2@affinity`, canonically spelled `edge`.
    pub fn edge() -> FleetSpec {
        FleetSpec {
            entries: EDGE_ENTRIES.into(),
            dispatcher: DispatcherSpec::Affinity,
        }
    }

    /// Named fleet presets as `(name, spec)` pairs, for `--list` output
    /// and error messages.
    pub fn presets() -> Vec<(&'static str, FleetSpec)> {
        vec![("edge", FleetSpec::edge())]
    }

    /// The `(geometry, replicas)` entries in fleet order.
    pub fn entries(&self) -> &[(MachineSpec, u32)] {
        &self.entries
    }

    /// Total machine count (entries expanded).
    pub fn n_machines(&self) -> usize {
        self.entries.iter().map(|&(_, c)| c as usize).sum()
    }

    /// The individual machine geometries, expanded in fleet order (machine
    /// index `i` of a running fleet is `machines()[i]`).
    pub fn machines(&self) -> Vec<MachineSpec> {
        self.entries
            .iter()
            .flat_map(|&(spec, count)| std::iter::repeat_n(spec, count as usize))
            .collect()
    }

    /// Canonical rendering (same as `Display`), for use as a plan-axis
    /// label.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// The preset default policy for this entry set: presets carry their
    /// own default (which `Display` then omits), ad-hoc fleets default to
    /// round-robin.
    fn default_policy_for_entries(entries: &[(MachineSpec, u32)]) -> DispatcherSpec {
        if entries == EDGE_ENTRIES {
            DispatcherSpec::Affinity
        } else {
            DispatcherSpec::RoundRobin
        }
    }
}

impl fmt::Display for FleetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries[..] == EDGE_ENTRIES {
            f.write_str("edge")?;
        } else {
            for (i, &(spec, count)) in self.entries.iter().enumerate() {
                if i > 0 {
                    f.write_str("/")?;
                }
                write!(f, "{spec}")?;
                if count != 1 {
                    write!(f, "*{count}")?;
                }
            }
        }
        if self.dispatcher != FleetSpec::default_policy_for_entries(&self.entries) {
            write!(f, "@{}", self.dispatcher)?;
        }
        Ok(())
    }
}

impl FromStr for FleetSpec {
    type Err = FleetError;

    fn from_str(s: &str) -> Result<Self, FleetError> {
        let norm = s.trim().to_ascii_lowercase().replace('_', "-");
        if norm.is_empty() {
            return Err(FleetError::Empty);
        }
        let (body, policy) = match norm.split_once('@') {
            Some((body, policy)) => (body, Some(policy.parse::<DispatcherSpec>()?)),
            None => (norm.as_str(), None),
        };
        if body.is_empty() {
            return Err(FleetError::Empty);
        }
        // Named presets first (like the machine grammar), then the
        // entry-list grammar.
        if let Some((_, preset)) = FleetSpec::presets().into_iter().find(|(n, _)| *n == body) {
            return Ok(FleetSpec {
                entries: preset.entries,
                dispatcher: policy.unwrap_or(preset.dispatcher),
            });
        }
        let mut entries = Vec::new();
        for part in body.split('/') {
            if part.is_empty() {
                return Err(FleetError::Empty);
            }
            let (machine, count) = match part.split_once('*') {
                Some((machine, count)) => {
                    let n: u32 = count
                        .parse()
                        .map_err(|_| FleetError::BadCount(count.to_string()))?;
                    (machine, n)
                }
                None => (part, 1),
            };
            if count == 0 || count > MAX_COUNT_PER_ENTRY {
                return Err(FleetError::BadCount(count.to_string()));
            }
            entries.push((machine.parse::<MachineSpec>()?, count));
        }
        let dispatcher = policy.unwrap_or_else(|| FleetSpec::default_policy_for_entries(&entries));
        FleetSpec::new(entries, dispatcher)
    }
}

/// What the dispatcher sees of one machine when routing an arrival: its
/// geometry and its current load. Snapshot semantics — the driver builds
/// these fresh at every routing decision.
#[derive(Debug, Clone, Copy)]
pub struct LaneView {
    /// The machine's geometry.
    pub machine: MachineSpec,
    /// Threads waiting in the machine's admission queue.
    pub queue_len: usize,
    /// Threads admitted and not yet completed (pool + contexts).
    pub in_flight: usize,
    /// Arrivals routed to this machine so far.
    pub routed: u64,
}

impl LaneView {
    /// Queued plus in-flight threads — the load signal the built-in
    /// policies compare.
    pub fn load(&self) -> usize {
        self.queue_len + self.in_flight
    }
}

/// A fleet-level dispatch policy: given the state of every machine, pick
/// the one that receives the arriving thread.
///
/// Implementations must be deterministic functions of `(self, lanes,
/// width_hint)` — no randomness, no ambient state — so fleet runs stay
/// byte-identical across worker counts. `route` takes `&mut self` because
/// policies may carry state (round-robin's cursor).
pub trait Dispatcher {
    /// The policy's name (for reports).
    fn name(&self) -> &'static str;

    /// Pick the lane (index into `lanes`, which is never empty) that
    /// receives a thread whose static width hint — mean operations per
    /// VLIW instruction, rounded — is `width_hint`.
    fn route(&mut self, lanes: &[LaneView], width_hint: u32) -> usize;
}

/// Cycle through the lanes in order, one arrival each.
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl Dispatcher for RoundRobin {
    fn name(&self) -> &'static str {
        DispatcherSpec::RoundRobin.name()
    }

    fn route(&mut self, lanes: &[LaneView], _width_hint: u32) -> usize {
        let idx = self.cursor % lanes.len();
        self.cursor = self.cursor.wrapping_add(1);
        idx
    }
}

/// Join the shortest queue (queued + in-flight), fleet order breaking ties.
#[derive(Debug, Default)]
pub struct LeastQueued;

impl Dispatcher for LeastQueued {
    fn name(&self) -> &'static str {
        DispatcherSpec::LeastQueued.name()
    }

    fn route(&mut self, lanes: &[LaneView], _width_hint: u32) -> usize {
        lanes
            .iter()
            .enumerate()
            .min_by_key(|(i, l)| (l.load(), *i))
            .map(|(i, _)| i)
            .expect("fleets are non-empty")
    }
}

/// Geometry affinity: minimize the distance between the thread's static
/// width and the lane's per-cluster issue width, so wide threads land on
/// wide machines; ties break by load, then fleet order.
#[derive(Debug, Default)]
pub struct Affinity;

impl Dispatcher for Affinity {
    fn name(&self) -> &'static str {
        DispatcherSpec::Affinity.name()
    }

    fn route(&mut self, lanes: &[LaneView], width_hint: u32) -> usize {
        lanes
            .iter()
            .enumerate()
            .min_by_key(|(i, l)| {
                let issue = u32::from(l.machine.config().issue_per_cluster);
                let fit = issue.abs_diff(width_hint);
                (fit, l.load(), *i)
            })
            .map(|(i, _)| i)
            .expect("fleets are non-empty")
    }
}

/// Per-machine accounting of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineLaneStats {
    /// The machine's geometry.
    pub machine: MachineSpec,
    /// Arrivals the dispatcher routed here.
    pub routed: u64,
    /// Threads that ran to completion here.
    pub completed: u64,
    /// Arrivals shed at this machine's admission queue.
    pub shed: u64,
    /// The machine's final cycle count.
    pub cycles: u64,
    /// Operations retired on this machine.
    pub ops: u64,
    /// VLIW instructions retired on this machine.
    pub instrs: u64,
    /// Issue-slot utilization: `ops / (cycles × total issue width)`.
    pub utilization: f64,
    /// Instructions per cycle on this machine.
    pub ipc: f64,
}

/// Fleet-level accounting: one [`MachineLaneStats`] per machine, in fleet
/// order, plus the totals the conservation law is checked against.
///
/// The fleet-wide sojourn quantiles live in the run's `TrafficStats`
/// (merged across machines by the driver), not here: this struct owns what
/// is *per-machine* or *about routing*.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Per-machine accounting, in fleet order.
    pub machines: Vec<MachineLaneStats>,
}

impl FleetStats {
    /// Number of machines in the fleet.
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// Total arrivals routed (equals the run's offered count).
    pub fn routed_total(&self) -> u64 {
        self.machines.iter().map(|m| m.routed).sum()
    }

    /// Total completions across the fleet.
    pub fn completed_total(&self) -> u64 {
        self.machines.iter().map(|m| m.completed).sum()
    }

    /// Total sheds across the fleet.
    pub fn shed_total(&self) -> u64 {
        self.machines.iter().map(|m| m.shed).sum()
    }

    /// The per-machine conservation law, fleet-wide: every machine's
    /// `completed + shed == routed`.
    pub fn conserves_arrivals(&self) -> bool {
        self.machines
            .iter()
            .all(|m| m.completed + m.shed == m.routed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(s: &str) -> FleetSpec {
        s.parse::<FleetSpec>().unwrap()
    }

    #[test]
    fn display_parse_round_trips() {
        for s in [
            "paper-4x4*4",
            "2x8/8x2",
            "paper-4x4*2/2x8@least-queued",
            "edge",
            "edge@round-robin",
            "4x4-lite*3@affinity",
            "3x5+2+1*2",
        ] {
            let spec = rt(s);
            assert_eq!(spec.to_string(), s, "canonical spelling must be stable");
            assert_eq!(rt(&spec.to_string()), spec, "round-trip");
        }
    }

    #[test]
    fn spellings_canonicalize() {
        // Default policy is omitted; explicit default round-robin folds away.
        assert_eq!(rt("paper-4x4*2@round-robin").to_string(), "paper-4x4*2");
        // Count 1 is omitted.
        assert_eq!(rt("2x8*1/8x2*1").to_string(), "2x8/8x2");
        // The edge preset canonicalizes from its expansion, and carries
        // affinity as its own default.
        assert_eq!(rt("paper-4x4*2/2x8/8x2@affinity").to_string(), "edge");
        assert_eq!(rt("edge").dispatcher, DispatcherSpec::Affinity);
        assert_eq!(rt("edge@affinity").to_string(), "edge");
        // Machine-level canonicalization flows through.
        assert_eq!(rt("4x4+2+1*2").to_string(), "paper-4x4*2");
        // Case/underscore-insensitive like the machine grammar.
        assert_eq!(rt("EDGE@Least_Queued").to_string(), "edge@least-queued");
    }

    #[test]
    fn expansion_and_counts() {
        let spec = rt("paper-4x4*2/2x8");
        assert_eq!(spec.n_machines(), 3);
        assert_eq!(
            spec.machines(),
            vec![
                MachineSpec::Paper4x4,
                MachineSpec::Paper4x4,
                MachineSpec::Wide2x8
            ]
        );
        assert_eq!(rt("edge").n_machines(), 4);
    }

    #[test]
    fn parse_errors_are_typed() {
        assert_eq!("".parse::<FleetSpec>(), Err(FleetError::Empty));
        assert_eq!("@affinity".parse::<FleetSpec>(), Err(FleetError::Empty));
        assert_eq!(
            "paper-4x4//2x8".parse::<FleetSpec>(),
            Err(FleetError::Empty)
        );
        assert_eq!(
            "paper-4x4*0".parse::<FleetSpec>(),
            Err(FleetError::BadCount("0".into()))
        );
        assert_eq!(
            "paper-4x4*65".parse::<FleetSpec>(),
            Err(FleetError::BadCount("65".into()))
        );
        assert_eq!(
            "paper-4x4*two".parse::<FleetSpec>(),
            Err(FleetError::BadCount("two".into()))
        );
        assert!(matches!(
            "nope-9x9x9".parse::<FleetSpec>(),
            Err(FleetError::Machine(_))
        ));
        assert_eq!(
            "paper-4x4@fastest".parse::<FleetSpec>(),
            Err(FleetError::UnknownPolicy("fastest".into()))
        );
    }

    fn lanes(loads: &[(usize, usize)]) -> Vec<LaneView> {
        loads
            .iter()
            .map(|&(q, f)| LaneView {
                machine: MachineSpec::Paper4x4,
                queue_len: q,
                in_flight: f,
                routed: 0,
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_in_order() {
        let mut d = DispatcherSpec::RoundRobin.build();
        let v = lanes(&[(0, 0), (0, 0), (0, 0)]);
        let picks: Vec<usize> = (0..7).map(|_| d.route(&v, 4)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_queued_picks_minimum_load_with_stable_ties() {
        let mut d = DispatcherSpec::LeastQueued.build();
        assert_eq!(d.route(&lanes(&[(3, 1), (0, 2), (1, 0)]), 4), 2);
        // Tie on load -> lowest index.
        assert_eq!(d.route(&lanes(&[(1, 1), (0, 2), (2, 0)]), 4), 0);
    }

    #[test]
    fn affinity_routes_wide_threads_to_wide_machines() {
        let mut d = DispatcherSpec::Affinity.build();
        let v: Vec<LaneView> = [
            MachineSpec::Narrow8x2,
            MachineSpec::Paper4x4,
            MachineSpec::Wide2x8,
        ]
        .into_iter()
        .map(|machine| LaneView {
            machine,
            queue_len: 0,
            in_flight: 0,
            routed: 0,
        })
        .collect();
        assert_eq!(d.route(&v, 8), 2, "wide thread -> 8-issue clusters");
        assert_eq!(d.route(&v, 2), 0, "narrow thread -> 2-issue clusters");
        assert_eq!(d.route(&v, 4), 1, "middle thread -> the paper baseline");
        // Equidistant geometries: load, then index, breaks the tie.
        let mut tied = v.clone();
        tied[0].queue_len = 1;
        assert_eq!(d.route(&tied, 3), 1, "load breaks the geometry tie");
    }

    #[test]
    fn policies_report_their_spec_names() {
        for spec in DispatcherSpec::all() {
            assert_eq!(spec.build().name(), spec.name());
            assert_eq!(spec.name().parse::<DispatcherSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn fleet_stats_conservation() {
        let lane = |routed, completed, shed| MachineLaneStats {
            machine: MachineSpec::Paper4x4,
            routed,
            completed,
            shed,
            cycles: 100,
            ops: 50,
            instrs: 25,
            utilization: 0.5,
            ipc: 0.25,
        };
        let ok = FleetStats {
            machines: vec![lane(5, 4, 1), lane(3, 3, 0)],
        };
        assert!(ok.conserves_arrivals());
        assert_eq!(ok.routed_total(), 8);
        assert_eq!(ok.completed_total(), 7);
        assert_eq!(ok.shed_total(), 1);
        let bad = FleetStats {
            machines: vec![lane(5, 3, 1)],
        };
        assert!(!bad.conserves_arrivals());
    }
}
