//! Trace sinks: where events go, including the zero-cost disabled path.

use crate::event::TraceEvent;
use std::collections::VecDeque;

/// A consumer of [`TraceEvent`]s.
///
/// The simulator's hot loop is generic over `S: TraceSink`, and every
/// emission site is written as
///
/// ```ignore
/// if S::ENABLED {
///     sink.record(TraceEvent::BundleIssue { .. });
/// }
/// ```
///
/// [`TraceSink::ENABLED`] is an *associated constant*, so for
/// [`NullSink`] the guard is `if false` at monomorphization time and the
/// event construction — including any field reads done only to build it —
/// is dead code the compiler removes. The disabled path therefore compiles
/// to the untraced code, which is what lets tracing ride inside the
/// cycle loop at all.
pub trait TraceSink {
    /// Whether this sink observes events. Emission sites must guard on
    /// this so disabled sinks cost nothing.
    const ENABLED: bool = true;

    /// Record one event. Called only under an `S::ENABLED` guard.
    fn record(&mut self, event: TraceEvent);
}

impl<S: TraceSink> TraceSink for &mut S {
    const ENABLED: bool = S::ENABLED;

    #[inline(always)]
    fn record(&mut self, event: TraceEvent) {
        (**self).record(event);
    }
}

/// The disabled sink: drops everything, compiles away entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

/// An unbounded sink keeping the full event stream, in emission order.
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    events: Vec<TraceEvent>,
}

impl RecordingSink {
    /// An empty recording sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events recorded so far, emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consume the sink into its event vector.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for RecordingSink {
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// A bounded sink keeping the most recent `capacity` events and counting
/// what it dropped — constant memory over arbitrarily long runs.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring keeping at most `capacity` events (≥ 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            // Pre-allocation is capped so an absurd capacity request does
            // not reserve gigabytes before a single event arrives.
            buf: VecDeque::with_capacity(capacity.clamp(1, 1 << 20)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events dropped (overwritten) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the ring into its retained events (oldest first) and the
    /// dropped-event count.
    pub fn into_parts(self) -> (Vec<TraceEvent>, u64) {
        (self.buf.into_iter().collect(), self.dropped)
    }
}

impl TraceSink for RingSink {
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }
}

/// How a run should be traced — the serializable policy knob carried by
/// the simulator's configuration (`SimConfig::with_trace`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceSpec {
    /// No tracing: the run executes the monomorphized [`NullSink`] path.
    #[default]
    Off,
    /// Keep the most recent `n` events in a bounded [`RingSink`].
    Ring(usize),
    /// Keep every event in a [`RecordingSink`].
    Full,
}

/// A recorded trace: the event stream plus the run context needed to
/// analyze and export it stand-alone.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in emission order. Cycle labels are *near*-monotone: each
    /// event carries the cycle its cost was charged at, and an
    /// instruction-fetch probe after a retire is charged at the thread's
    /// next-free cycle, which can run a stall chain ahead of other
    /// contexts' current-cycle events.
    pub events: Vec<TraceEvent>,
    /// Hardware contexts of the traced machine.
    pub n_contexts: u8,
    /// `(tid, benchmark name)` of every software thread, ascending tid.
    pub threads: Vec<(u32, String)>,
    /// Final cycle of the run (open occupancy segments close here).
    pub end_cycle: u64,
    /// Events dropped by a bounded sink (`0` for a full recording).
    pub dropped: u64,
}

impl Trace {
    /// The name of thread `tid`, or `"?"` when unknown.
    pub fn thread_name(&self, tid: u32) -> &str {
        self.threads
            .iter()
            .find(|(t, _)| *t == tid)
            .map(|(_, n)| n.as_str())
            .unwrap_or("?")
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StallKind;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::Stall {
            cycle,
            ctx: 0,
            tid: 0,
            kind: StallKind::DCacheMiss,
            cycles: 20,
        }
    }

    #[test]
    fn recording_sink_keeps_everything_in_order() {
        let mut s = RecordingSink::new();
        for c in 0..100 {
            s.record(ev(c));
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.events()[7].cycle(), 7);
    }

    #[test]
    fn ring_sink_bounds_memory_and_counts_drops() {
        let mut s = RingSink::new(10);
        for c in 0..25 {
            s.record(ev(c));
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.dropped(), 15);
        let (events, dropped) = s.into_parts();
        assert_eq!(dropped, 15);
        // Oldest retained event is cycle 15 (0..14 overwritten).
        assert_eq!(events.first().unwrap().cycle(), 15);
        assert_eq!(events.last().unwrap().cycle(), 24);
    }

    #[test]
    fn null_sink_is_disabled_at_compile_time() {
        // Read through a generic fn so the constants are checked the way
        // emission sites see them (and clippy sees no constant assert).
        fn enabled<S: TraceSink>() -> bool {
            S::ENABLED
        }
        assert!(!enabled::<NullSink>());
        assert!(enabled::<RecordingSink>());
        assert!(enabled::<RingSink>());
        // The &mut blanket impl forwards the constant.
        assert!(!enabled::<&mut NullSink>());
        assert!(enabled::<&mut RecordingSink>());
    }

    #[test]
    fn trace_resolves_thread_names() {
        let t = Trace {
            threads: vec![(0, "mcf".into()), (1, "idct".into())],
            ..Trace::default()
        };
        assert_eq!(t.thread_name(1), "idct");
        assert_eq!(t.thread_name(9), "?");
        assert!(t.is_empty());
    }
}
