//! Derived timeline analyses over a recorded [`Trace`].

use crate::event::{StallKind, TraceEvent};
use crate::sink::Trace;
use std::fmt::Write as _;

/// Stall cycles decomposed by [`StallKind`] — the Figure-6-style "where
/// did the cycles go" view.
///
/// The same decomposition is available from end-of-run aggregates
/// (`RunStats::stall_breakdown` in `vliw-sim`); building it from a full
/// trace with [`StallBreakdown::from_events`] must agree exactly, which is
/// the tracer's conservation check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Cycles charged to instruction-cache misses.
    pub icache: u64,
    /// Cycles charged to data-cache misses.
    pub dcache: u64,
    /// Cycles charged to taken-branch bubbles.
    pub branch: u64,
}

impl StallBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `cycles` to one kind's bucket.
    pub fn add(&mut self, kind: StallKind, cycles: u64) {
        match kind {
            StallKind::ICacheMiss => self.icache += cycles,
            StallKind::DCacheMiss => self.dcache += cycles,
            StallKind::BranchBubble => self.branch += cycles,
        }
    }

    /// Cycles in one kind's bucket.
    pub fn get(&self, kind: StallKind) -> u64 {
        match kind {
            StallKind::ICacheMiss => self.icache,
            StallKind::DCacheMiss => self.dcache,
            StallKind::BranchBubble => self.branch,
        }
    }

    /// Total stall cycles across all kinds.
    pub fn total(&self) -> u64 {
        self.icache + self.dcache + self.branch
    }

    /// `(kind, cycles)` pairs in the stable [`StallKind::ALL`] order.
    pub fn entries(&self) -> [(StallKind, u64); 3] {
        StallKind::ALL.map(|k| (k, self.get(k)))
    }

    /// Accumulate every [`TraceEvent::Stall`] event of a stream.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut b = StallBreakdown::new();
        for e in events {
            if let TraceEvent::Stall { kind, cycles, .. } = e {
                b.add(*kind, u64::from(*cycles));
            }
        }
        b
    }
}

/// One span of a context-occupancy timeline: thread `tid` occupied
/// hardware context `ctx` for cycles `start..end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancySegment {
    /// Occupied hardware context.
    pub ctx: u8,
    /// Occupying software thread.
    pub tid: u32,
    /// First occupied cycle.
    pub start: u64,
    /// One past the last occupied cycle.
    pub end: u64,
}

impl OccupancySegment {
    /// Segment length in cycles.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the segment covers no cycles.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Reconstruct the context-occupancy timeline from a trace's admission,
/// refill and eviction events.
///
/// Segments still open at the end of the stream are closed at
/// [`Trace::end_cycle`]. Output order is deterministic: closed segments in
/// stream order, then still-open segments by ascending context.
pub fn occupancy_timeline(trace: &Trace) -> Vec<OccupancySegment> {
    let mut open: Vec<Option<(u32, u64)>> = vec![None; usize::from(trace.n_contexts)];
    let mut out = Vec::new();
    for e in &trace.events {
        match *e {
            TraceEvent::ContextAdmit { cycle, ctx, tid }
            | TraceEvent::ContextRefill { cycle, ctx, tid } => {
                if let Some(slot) = open.get_mut(usize::from(ctx)) {
                    // A re-open without an eviction (ring truncation) drops
                    // the stale opening; the new one wins.
                    *slot = Some((tid, cycle));
                }
            }
            TraceEvent::ContextEvict { cycle, ctx, tid } => {
                if let Some(slot) = open.get_mut(usize::from(ctx)) {
                    if let Some((open_tid, start)) = slot.take() {
                        // Ring truncation can desynchronize tids; trust the
                        // eviction's tid (it names the thread that left).
                        let _ = open_tid;
                        out.push(OccupancySegment {
                            ctx,
                            tid,
                            start,
                            end: cycle,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    for (ctx, slot) in open.into_iter().enumerate() {
        if let Some((tid, start)) = slot {
            out.push(OccupancySegment {
                ctx: ctx as u8,
                tid,
                start,
                end: trace.end_cycle.max(start),
            });
        }
    }
    out
}

/// Number of buckets in a [`MigrationHistogram`] (log₂ cycle classes).
pub const MIGRATION_BUCKETS: usize = 16;

/// Histogram of thread-migration latencies: for every refill that landed a
/// thread on a *different* context, the cycles the thread spent swapped out
/// between its eviction and that refill, in log₂ buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationHistogram {
    buckets: [u64; MIGRATION_BUCKETS],
    total: u64,
    max_latency: u64,
}

impl MigrationHistogram {
    /// Build the histogram from a trace's eviction/refill events.
    ///
    /// A migration is detected at the *refill* that lands a thread on a
    /// different context than it was evicted from (the simulator emits
    /// `ContextRefill` before the companion `ThreadMigration`, so the
    /// refill must be the counting point — it consumes the pending
    /// eviction either way). Bare `ThreadMigration` events whose refill
    /// is absent from the stream are counted as a fallback.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut evicted_at: std::collections::HashMap<u32, (u64, u8)> =
            std::collections::HashMap::new();
        let mut h = MigrationHistogram {
            buckets: [0; MIGRATION_BUCKETS],
            total: 0,
            max_latency: 0,
        };
        let count = |h: &mut Self, out: u64, back: u64| {
            let latency = back.saturating_sub(out);
            h.buckets[Self::bucket_of(latency)] += 1;
            h.total += 1;
            h.max_latency = h.max_latency.max(latency);
        };
        for e in events {
            match *e {
                TraceEvent::ContextEvict { cycle, ctx, tid } => {
                    evicted_at.insert(tid, (cycle, ctx));
                }
                TraceEvent::ContextRefill { cycle, ctx, tid } => {
                    if let Some((out, from)) = evicted_at.remove(&tid) {
                        if from != ctx {
                            count(&mut h, out, cycle);
                        }
                    }
                }
                TraceEvent::ThreadMigration { cycle, tid, .. } => {
                    // Only reached when the matching refill was not in the
                    // stream (hand-built or truncated traces): the refill
                    // arm above consumes the eviction first otherwise, so
                    // no migration is ever double-counted.
                    if let Some((out, _)) = evicted_at.remove(&tid) {
                        count(&mut h, out, cycle);
                    }
                }
                _ => {}
            }
        }
        h
    }

    /// Bucket index of a latency: `0` covers 0–1 cycles, bucket `i` covers
    /// `2^i..2^(i+1)` cycles, the last bucket everything beyond.
    pub fn bucket_of(latency: u64) -> usize {
        (64 - latency.max(1).leading_zeros() as usize - 1).min(MIGRATION_BUCKETS - 1)
    }

    /// Human-readable range label of bucket `i`.
    pub fn bucket_label(i: usize) -> String {
        if i + 1 >= MIGRATION_BUCKETS {
            format!("{}+", 1u64 << i)
        } else {
            format!("{}-{}", 1u64 << i, (1u64 << (i + 1)) - 1)
        }
    }

    /// Migration counts per bucket.
    pub fn buckets(&self) -> &[u64; MIGRATION_BUCKETS] {
        &self.buckets
    }

    /// Total migrations observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest swapped-out latency observed (0 when no migrations).
    pub fn max_latency(&self) -> u64 {
        self.max_latency
    }
}

/// Render a trace's context-occupancy timeline as fixed-width ASCII.
///
/// One row per hardware context, `width` time buckets per row; each bucket
/// shows the thread that occupied the context for the majority of the
/// bucket (`0-9a-z` by tid, `*` beyond 36, `.` idle), plus a legend
/// mapping symbols to benchmark names. Deterministic for a given trace.
pub fn render_ascii_timeline(trace: &Trace, width: usize) -> String {
    let width = width.clamp(1, 512);
    let segments = occupancy_timeline(trace);
    let end = trace.end_cycle.max(1);
    let sym = |tid: u32| -> char {
        match tid {
            0..=9 => (b'0' + tid as u8) as char,
            10..=35 => (b'a' + (tid - 10) as u8) as char,
            _ => '*',
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "context occupancy over {end} cycles ({width} buckets of ~{} cycles)",
        end.div_ceil(width as u64)
    );
    for ctx in 0..trace.n_contexts {
        let _ = write!(out, "ctx {ctx} |");
        for b in 0..width as u64 {
            let b_start = b * end / width as u64;
            let b_end = ((b + 1) * end / width as u64).max(b_start + 1);
            // Majority occupant of the bucket, idle otherwise.
            let mut best: Option<(u32, u64)> = None;
            let mut covered = 0u64;
            for s in segments.iter().filter(|s| s.ctx == ctx) {
                let overlap = s.end.min(b_end).saturating_sub(s.start.max(b_start));
                if overlap > 0 {
                    covered += overlap;
                    if best.is_none_or(|(_, o)| overlap > o) {
                        best = Some((s.tid, overlap));
                    }
                }
            }
            let idle = (b_end - b_start).saturating_sub(covered);
            out.push(match best {
                Some((tid, o)) if o >= idle => sym(tid),
                _ => '.',
            });
        }
        out.push_str("|\n");
    }
    out.push_str("legend: ");
    for (i, (tid, name)) in trace.threads.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}={}", sym(*tid), name);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_with(events: Vec<TraceEvent>, n_contexts: u8, end: u64) -> Trace {
        Trace {
            events,
            n_contexts,
            threads: vec![(0, "mcf".into()), (1, "idct".into())],
            end_cycle: end,
            dropped: 0,
        }
    }

    #[test]
    fn breakdown_accumulates_and_totals() {
        let events = vec![
            TraceEvent::Stall {
                cycle: 1,
                ctx: 0,
                tid: 0,
                kind: StallKind::DCacheMiss,
                cycles: 20,
            },
            TraceEvent::Stall {
                cycle: 2,
                ctx: 0,
                tid: 0,
                kind: StallKind::BranchBubble,
                cycles: 2,
            },
            TraceEvent::Stall {
                cycle: 3,
                ctx: 1,
                tid: 1,
                kind: StallKind::DCacheMiss,
                cycles: 20,
            },
        ];
        let b = StallBreakdown::from_events(&events);
        assert_eq!(b.dcache, 40);
        assert_eq!(b.branch, 2);
        assert_eq!(b.icache, 0);
        assert_eq!(b.total(), 42);
        assert_eq!(b.entries()[1], (StallKind::DCacheMiss, 40));
    }

    #[test]
    fn occupancy_closes_open_segments_at_end() {
        let t = trace_with(
            vec![
                TraceEvent::ContextAdmit {
                    cycle: 0,
                    ctx: 0,
                    tid: 0,
                },
                TraceEvent::ContextEvict {
                    cycle: 100,
                    ctx: 0,
                    tid: 0,
                },
                TraceEvent::ContextRefill {
                    cycle: 100,
                    ctx: 0,
                    tid: 1,
                },
            ],
            1,
            250,
        );
        let segs = occupancy_timeline(&t);
        assert_eq!(
            segs,
            vec![
                OccupancySegment {
                    ctx: 0,
                    tid: 0,
                    start: 0,
                    end: 100
                },
                OccupancySegment {
                    ctx: 0,
                    tid: 1,
                    start: 100,
                    end: 250
                },
            ]
        );
        assert_eq!(segs[0].len(), 100);
    }

    #[test]
    fn migration_histogram_buckets_latencies() {
        // The simulator's emission order: a cross-context refill is
        // followed by its companion ThreadMigration — counted exactly once.
        let events = vec![
            TraceEvent::ContextEvict {
                cycle: 1000,
                ctx: 0,
                tid: 0,
            },
            TraceEvent::ContextRefill {
                cycle: 1005,
                ctx: 1,
                tid: 0,
            },
            TraceEvent::ThreadMigration {
                cycle: 1005,
                tid: 0,
                from_ctx: 0,
                to_ctx: 1,
            },
            // Same-context refill: not a migration.
            TraceEvent::ContextEvict {
                cycle: 2000,
                ctx: 1,
                tid: 1,
            },
            TraceEvent::ContextRefill {
                cycle: 2100,
                ctx: 1,
                tid: 1,
            },
            // Bare migration without its refill (hand-built stream): the
            // fallback arm still counts it.
            TraceEvent::ContextEvict {
                cycle: 3000,
                ctx: 2,
                tid: 2,
            },
            TraceEvent::ThreadMigration {
                cycle: 3005,
                tid: 2,
                from_ctx: 2,
                to_ctx: 3,
            },
        ];
        let h = MigrationHistogram::from_events(&events);
        assert_eq!(h.total(), 2);
        assert_eq!(h.max_latency(), 5);
        assert_eq!(h.buckets()[MigrationHistogram::bucket_of(5)], 2);
        assert_eq!(MigrationHistogram::bucket_of(0), 0);
        assert_eq!(MigrationHistogram::bucket_of(1), 0);
        assert_eq!(MigrationHistogram::bucket_of(2), 1);
        assert_eq!(
            MigrationHistogram::bucket_of(u64::MAX),
            MIGRATION_BUCKETS - 1
        );
        assert_eq!(MigrationHistogram::bucket_label(0), "1-1");
        assert_eq!(
            MigrationHistogram::bucket_label(MIGRATION_BUCKETS - 1),
            format!("{}+", 1u64 << (MIGRATION_BUCKETS - 1))
        );
    }

    #[test]
    fn ascii_timeline_shows_occupancy_and_legend() {
        let t = trace_with(
            vec![
                TraceEvent::ContextAdmit {
                    cycle: 0,
                    ctx: 0,
                    tid: 0,
                },
                TraceEvent::ContextEvict {
                    cycle: 50,
                    ctx: 0,
                    tid: 0,
                },
                TraceEvent::ContextRefill {
                    cycle: 50,
                    ctx: 0,
                    tid: 1,
                },
            ],
            2,
            100,
        );
        let s = render_ascii_timeline(&t, 10);
        assert!(s.contains("ctx 0 |0000011111|"), "{s}");
        // Context 1 never occupied: all idle.
        assert!(s.contains("ctx 1 |..........|"), "{s}");
        assert!(s.contains("legend: 0=mcf, 1=idct"), "{s}");
        // Deterministic render.
        assert_eq!(s, render_ascii_timeline(&t, 10));
    }
}
