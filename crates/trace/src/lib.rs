//! # vliw-trace — zero-cost cycle-level event tracing
//!
//! The simulator's observability layer: where every cycle of a run went,
//! at event granularity, costing nothing when disabled.
//!
//! The design has three layers:
//!
//! * **Events** ([`TraceEvent`]) — typed cycle-level facts emitted by the
//!   pipeline, the memory system and the OS layer: bundle issue, stalls by
//!   kind, cache misses, context admission/eviction/refill, thread
//!   migration, and merge/split transitions of the issue mask.
//! * **Sinks** ([`TraceSink`]) — where events go. The hot loop is generic
//!   over `S: TraceSink` and every emission site is guarded by the
//!   *associated constant* [`TraceSink::ENABLED`], so with [`NullSink`]
//!   the guard is `if false` at monomorphization time and the entire
//!   event-construction code folds away: the disabled path compiles to
//!   the untraced code. [`RingSink`] keeps a bounded most-recent window;
//!   [`RecordingSink`] keeps everything.
//! * **Analyses & exporters** — derived views over a recorded [`Trace`]:
//!   per-kind stall decomposition ([`StallBreakdown`]), context-occupancy
//!   timelines ([`occupancy_timeline`], [`render_ascii_timeline`]),
//!   migration-latency histograms ([`MigrationHistogram`]), and byte-stable
//!   exporters to Chrome `trace_event` JSON, JSONL and CSV
//!   ([`TraceFormat`]).
//!
//! This crate is dependency-free and sits at the bottom of the workspace:
//! `vliw-mem` emits miss events through it, `vliw-sim` threads a sink
//! through core/OS/thread, and the `paper` binary exports traces from the
//! command line (`--trace`/`--trace-format`).

#![deny(missing_docs)]

mod analysis;
mod event;
mod export;
mod sink;

pub use analysis::{
    occupancy_timeline, render_ascii_timeline, MigrationHistogram, OccupancySegment,
    StallBreakdown, MIGRATION_BUCKETS,
};
pub use event::{CacheKind, StallKind, TraceEvent};
pub use export::{TraceFormat, UnknownTraceFormat};
pub use sink::{NullSink, RecordingSink, RingSink, Trace, TraceSink, TraceSpec};
