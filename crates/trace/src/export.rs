//! Byte-stable trace exporters: Chrome `trace_event` JSON, JSONL, CSV.

use crate::analysis::occupancy_timeline;
use crate::event::TraceEvent;
use crate::sink::Trace;
use std::fmt::Write as _;
use std::str::FromStr;

/// A serialization format for recorded traces.
///
/// All three exporters are pure functions of the [`Trace`] — hand-rolled,
/// dependency-free, and byte-stable: the same trace always serializes to
/// the same bytes, independent of platform or worker count (traces
/// themselves are deterministic per simulation cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome `trace_event` JSON (load in `chrome://tracing` or Perfetto):
    /// the *timeline projection* — context-occupancy spans, stall spans, an
    /// issuing-contexts counter track, and migration instants. Raw
    /// cache-miss events are omitted here; use [`TraceFormat::Jsonl`] or
    /// [`TraceFormat::Csv`] for the unprojected stream.
    Chrome,
    /// One JSON object per line: a metadata line, then every raw event.
    Jsonl,
    /// RFC-4180-style CSV of every raw event, one row per event.
    Csv,
}

/// Error for an unrecognized trace-format name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTraceFormat(pub String);

impl std::fmt::Display for UnknownTraceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown trace format {:?}; valid formats: ", self.0)?;
        for (i, t) in TraceFormat::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", t.label())?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownTraceFormat {}

impl TraceFormat {
    /// Every format, in documentation order.
    pub const ALL: [TraceFormat; 3] = [TraceFormat::Chrome, TraceFormat::Jsonl, TraceFormat::Csv];

    /// Stable lowercase name (the `--trace-format` spelling).
    pub fn label(self) -> &'static str {
        match self {
            TraceFormat::Chrome => "chrome",
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Csv => "csv",
        }
    }

    /// Serialize a trace in this format.
    pub fn export(self, trace: &Trace) -> String {
        match self {
            TraceFormat::Chrome => export_chrome(trace),
            TraceFormat::Jsonl => export_jsonl(trace),
            TraceFormat::Csv => export_csv(trace),
        }
    }
}

impl std::fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for TraceFormat {
    type Err = UnknownTraceFormat;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TraceFormat::ALL
            .into_iter()
            .find(|t| t.label() == s)
            .ok_or_else(|| UnknownTraceFormat(s.to_string()))
    }
}

/// Append `value` as a JSON string literal (quotes + escapes).
fn json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Chrome `trace_event` JSON: one process, one track per hardware context
/// plus a scheduler track; cycles map 1:1 to the viewer's microseconds.
fn export_chrome(trace: &Trace) -> String {
    let mut s = String::with_capacity(1024 + 96 * trace.events.len());
    s.push_str("{\"traceEvents\":[");
    s.push_str(
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"vliw-tms\"}}",
    );
    for ctx in 0..trace.n_contexts {
        let _ = write!(
            s,
            ",{{\"ph\":\"M\",\"pid\":0,\"tid\":{ctx},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"hw context {ctx}\"}}}}"
        );
    }
    let sched_track = trace.n_contexts;
    let _ = write!(
        s,
        ",{{\"ph\":\"M\",\"pid\":0,\"tid\":{sched_track},\"name\":\"thread_name\",\
         \"args\":{{\"name\":\"os scheduler\"}}}}"
    );
    // Occupancy spans, one complete event per segment.
    for seg in occupancy_timeline(trace) {
        s.push_str(",{\"ph\":\"X\",\"pid\":0,\"tid\":");
        let _ = write!(s, "{}", seg.ctx);
        s.push_str(",\"ts\":");
        let _ = write!(s, "{}", seg.start);
        s.push_str(",\"dur\":");
        let _ = write!(s, "{}", seg.len());
        s.push_str(",\"cat\":\"occupancy\",\"name\":");
        json_string(&mut s, trace.thread_name(seg.tid));
        let _ = write!(s, ",\"args\":{{\"tid\":{}}}}}", seg.tid);
    }
    // Stall spans, migration instants, and the merged-width counter.
    for e in &trace.events {
        match *e {
            TraceEvent::Stall {
                cycle,
                ctx,
                tid,
                kind,
                cycles,
            } => {
                let _ = write!(
                    s,
                    ",{{\"ph\":\"X\",\"pid\":0,\"tid\":{ctx},\"ts\":{cycle},\"dur\":{cycles},\
                     \"cat\":\"stall\",\"name\":\"stall:{}\",\"args\":{{\"tid\":{tid}}}}}",
                    kind.label()
                );
            }
            TraceEvent::ThreadMigration {
                cycle,
                tid,
                from_ctx,
                to_ctx,
            } => {
                s.push_str(",{\"ph\":\"i\",\"pid\":0,\"tid\":");
                let _ = write!(s, "{sched_track},\"ts\":{cycle}");
                s.push_str(",\"s\":\"p\",\"cat\":\"sched\",\"name\":");
                json_string(&mut s, &format!("migrate {}", trace.thread_name(tid)));
                let _ = write!(s, ",\"args\":{{\"from\":{from_ctx},\"to\":{to_ctx}}}}}");
            }
            TraceEvent::MergeTransition { cycle, to_mask, .. } => {
                let _ = write!(
                    s,
                    ",{{\"ph\":\"C\",\"pid\":0,\"ts\":{cycle},\"name\":\"issuing contexts\",\
                     \"args\":{{\"n\":{}}}}}",
                    to_mask.count_ones()
                );
            }
            TraceEvent::ThreadArrival { cycle, tid, shed } => {
                s.push_str(",{\"ph\":\"i\",\"pid\":0,\"tid\":");
                let _ = write!(s, "{sched_track},\"ts\":{cycle}");
                s.push_str(",\"s\":\"p\",\"cat\":\"traffic\",\"name\":");
                let verb = if shed { "shed" } else { "arrive" };
                json_string(&mut s, &format!("{verb} {}", trace.thread_name(tid)));
                let _ = write!(s, ",\"args\":{{\"tid\":{tid},\"shed\":{shed}}}}}");
            }
            TraceEvent::QueueDepth { cycle, depth } => {
                let _ = write!(
                    s,
                    ",{{\"ph\":\"C\",\"pid\":0,\"ts\":{cycle},\"name\":\"admission queue\",\
                     \"args\":{{\"depth\":{depth}}}}}"
                );
            }
            _ => {}
        }
    }
    let _ = write!(
        s,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"end_cycle\":{},\"dropped_events\":{}}}}}",
        trace.end_cycle, trace.dropped
    );
    s
}

/// Append one raw event as a JSON object (shared by JSONL).
fn json_event(s: &mut String, e: &TraceEvent) {
    let _ = write!(s, "{{\"cycle\":{},\"event\":\"{}\"", e.cycle(), e.name());
    match *e {
        TraceEvent::BundleIssue { ctx, tid, ops, .. } => {
            let _ = write!(s, ",\"ctx\":{ctx},\"tid\":{tid},\"ops\":{ops}");
        }
        TraceEvent::Stall {
            ctx,
            tid,
            kind,
            cycles,
            ..
        } => {
            let _ = write!(
                s,
                ",\"ctx\":{ctx},\"tid\":{tid},\"kind\":\"{}\",\"cycles\":{cycles}",
                kind.label()
            );
        }
        TraceEvent::CacheMiss {
            ctx,
            cache,
            addr,
            is_store,
            ..
        } => {
            let _ = write!(
                s,
                ",\"ctx\":{ctx},\"cache\":\"{}\",\"addr\":{addr},\"is_store\":{is_store}",
                cache.label()
            );
        }
        TraceEvent::ContextAdmit { ctx, tid, .. }
        | TraceEvent::ContextEvict { ctx, tid, .. }
        | TraceEvent::ContextRefill { ctx, tid, .. } => {
            let _ = write!(s, ",\"ctx\":{ctx},\"tid\":{tid}");
        }
        TraceEvent::ThreadMigration {
            tid,
            from_ctx,
            to_ctx,
            ..
        } => {
            let _ = write!(s, ",\"tid\":{tid},\"from\":{from_ctx},\"to\":{to_ctx}");
        }
        TraceEvent::MergeTransition {
            from_mask, to_mask, ..
        } => {
            let _ = write!(s, ",\"from_mask\":{from_mask},\"to_mask\":{to_mask}");
        }
        TraceEvent::ThreadArrival { tid, shed, .. } => {
            let _ = write!(s, ",\"tid\":{tid},\"shed\":{shed}");
        }
        TraceEvent::QueueDepth { depth, .. } => {
            let _ = write!(s, ",\"depth\":{depth}");
        }
        TraceEvent::RoutedTo { tid, to, .. } => {
            let _ = write!(s, ",\"tid\":{tid},\"to\":{to}");
        }
    }
    s.push('}');
}

/// JSONL: a metadata line, then every raw event, one object per line.
fn export_jsonl(trace: &Trace) -> String {
    let mut s = String::with_capacity(64 + 80 * trace.events.len());
    let _ = write!(
        s,
        "{{\"event\":\"trace-meta\",\"n_contexts\":{},\"end_cycle\":{},\"dropped\":{},\"threads\":[",
        trace.n_contexts, trace.end_cycle, trace.dropped
    );
    for (i, (tid, name)) in trace.threads.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{{\"tid\":{tid},\"name\":");
        json_string(&mut s, name);
        s.push('}');
    }
    s.push_str("]}\n");
    for e in &trace.events {
        json_event(&mut s, e);
        s.push('\n');
    }
    s
}

/// The CSV exporter's header.
pub(crate) const CSV_HEADER: &str =
    "cycle,event,ctx,tid,kind,addr,is_store,ops,cycles,from,to,depth,shed";

/// CSV: every raw event, one row per event; inapplicable columns are empty.
fn export_csv(trace: &Trace) -> String {
    let mut s = String::with_capacity(32 + 48 * trace.events.len());
    s.push_str(CSV_HEADER);
    s.push('\n');
    for e in &trace.events {
        let _ = write!(s, "{},{}", e.cycle(), e.name());
        match *e {
            TraceEvent::BundleIssue { ctx, tid, ops, .. } => {
                let _ = writeln!(s, ",{ctx},{tid},,,,{ops},,,,,");
            }
            TraceEvent::Stall {
                ctx,
                tid,
                kind,
                cycles,
                ..
            } => {
                let _ = writeln!(s, ",{ctx},{tid},{},,,,{cycles},,,,", kind.label());
            }
            TraceEvent::CacheMiss {
                ctx,
                cache,
                addr,
                is_store,
                ..
            } => {
                let _ = writeln!(s, ",{ctx},,{},{addr},{is_store},,,,,,", cache.label());
            }
            TraceEvent::ContextAdmit { ctx, tid, .. }
            | TraceEvent::ContextEvict { ctx, tid, .. }
            | TraceEvent::ContextRefill { ctx, tid, .. } => {
                let _ = writeln!(s, ",{ctx},{tid},,,,,,,,,");
            }
            TraceEvent::ThreadMigration {
                tid,
                from_ctx,
                to_ctx,
                ..
            } => {
                let _ = writeln!(s, ",,{tid},,,,,,{from_ctx},{to_ctx},,");
            }
            TraceEvent::MergeTransition {
                from_mask, to_mask, ..
            } => {
                let _ = writeln!(s, ",,,,,,,,{from_mask},{to_mask},,");
            }
            TraceEvent::ThreadArrival { tid, shed, .. } => {
                let _ = writeln!(s, ",,{tid},,,,,,,,,{shed}");
            }
            TraceEvent::QueueDepth { depth, .. } => {
                let _ = writeln!(s, ",,,,,,,,,,{depth},");
            }
            TraceEvent::RoutedTo { tid, to, .. } => {
                let _ = writeln!(s, ",,{tid},,,,,,,{to},,");
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CacheKind, StallKind};

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                TraceEvent::ContextAdmit {
                    cycle: 0,
                    ctx: 0,
                    tid: 0,
                },
                TraceEvent::BundleIssue {
                    cycle: 1,
                    ctx: 0,
                    tid: 0,
                    ops: 4,
                },
                TraceEvent::CacheMiss {
                    cycle: 2,
                    ctx: 0,
                    cache: CacheKind::Data,
                    addr: 4096,
                    is_store: false,
                },
                TraceEvent::Stall {
                    cycle: 2,
                    ctx: 0,
                    tid: 0,
                    kind: StallKind::DCacheMiss,
                    cycles: 20,
                },
                TraceEvent::MergeTransition {
                    cycle: 3,
                    from_mask: 1,
                    to_mask: 0,
                },
                TraceEvent::ContextEvict {
                    cycle: 50,
                    ctx: 0,
                    tid: 0,
                },
                TraceEvent::ThreadMigration {
                    cycle: 60,
                    tid: 0,
                    from_ctx: 0,
                    to_ctx: 1,
                },
            ],
            n_contexts: 2,
            threads: vec![(0, "mcf".into())],
            end_cycle: 100,
            dropped: 0,
        }
    }

    #[test]
    fn format_names_parse_round_trip() {
        for f in TraceFormat::ALL {
            assert_eq!(f.label().parse::<TraceFormat>().unwrap(), f);
        }
        let err = "xml".parse::<TraceFormat>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("\"xml\""), "{msg}");
        for f in TraceFormat::ALL {
            assert!(msg.contains(f.label()), "{msg} must list {f}");
        }
    }

    #[test]
    fn chrome_export_is_trace_event_shaped() {
        let s = TraceFormat::Chrome.export(&sample_trace());
        assert!(s.starts_with("{\"traceEvents\":["), "{s}");
        assert!(s.contains("\"ph\":\"X\""), "occupancy span missing: {s}");
        assert!(s.contains("\"name\":\"stall:dcache\""), "{s}");
        assert!(s.contains("\"name\":\"migrate mcf\""), "{s}");
        assert!(s.contains("\"name\":\"issuing contexts\""), "{s}");
        assert!(s.ends_with('}'), "{s}");
        // Byte-stable.
        assert_eq!(s, TraceFormat::Chrome.export(&sample_trace()));
    }

    #[test]
    fn jsonl_has_meta_line_plus_one_line_per_event() {
        let t = sample_trace();
        let s = TraceFormat::Jsonl.export(&t);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 1 + t.events.len());
        assert!(
            lines[0].contains("\"event\":\"trace-meta\""),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains("\"event\":\"context-admit\""));
        assert!(lines[3].contains("\"addr\":4096"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "not an object: {l}");
        }
    }

    #[test]
    fn csv_rows_match_header_arity() {
        let t = sample_trace();
        let s = TraceFormat::Csv.export(&t);
        let mut lines = s.lines();
        let header = lines.next().unwrap();
        assert_eq!(header, CSV_HEADER);
        let ncols = header.split(',').count();
        let mut rows = 0;
        for l in lines {
            assert_eq!(l.split(',').count(), ncols, "row arity: {l}");
            rows += 1;
        }
        assert_eq!(rows, t.events.len());
        assert!(s.contains("2,stall,0,0,dcache,,,,20,,,,"), "{s}");
    }
}
