//! Typed cycle-level trace events.

/// What a stall cycle was charged to.
///
/// The three kinds mirror the simulator's per-thread stall counters
/// (`dstall_cycles` / `istall_cycles` / `branch_stall_cycles`), so a
/// trace-derived decomposition is conservation-checkable against the
/// end-of-run aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallKind {
    /// Instruction-cache miss latency.
    ICacheMiss,
    /// Data-cache miss latency (blocking, serialized per instruction).
    DCacheMiss,
    /// Taken-branch bubble (the merge network's extra pipeline stage).
    BranchBubble,
}

impl StallKind {
    /// All kinds, in the stable serialization order.
    pub const ALL: [StallKind; 3] = [
        StallKind::ICacheMiss,
        StallKind::DCacheMiss,
        StallKind::BranchBubble,
    ];

    /// Stable lowercase label used in serialized traces and exhibits.
    pub fn label(self) -> &'static str {
        match self {
            StallKind::ICacheMiss => "icache",
            StallKind::DCacheMiss => "dcache",
            StallKind::BranchBubble => "branch",
        }
    }
}

impl std::fmt::Display for StallKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which cache a miss event came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKind {
    /// The shared instruction cache.
    Instruction,
    /// The shared data cache.
    Data,
}

impl CacheKind {
    /// Stable lowercase label used in serialized traces.
    pub fn label(self) -> &'static str {
        match self {
            CacheKind::Instruction => "icache",
            CacheKind::Data => "dcache",
        }
    }
}

impl std::fmt::Display for CacheKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One cycle-level event of a simulation run.
///
/// Events are small (`Copy`) and carry the cycle they happened at, so any
/// subsequence — including a [`crate::RingSink`]'s bounded window — is
/// independently analyzable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A hardware context issued its head instruction this cycle.
    BundleIssue {
        /// Issue cycle.
        cycle: u64,
        /// Hardware context that issued.
        ctx: u8,
        /// Software thread occupying the context.
        tid: u32,
        /// Operations in the issued instruction.
        ops: u8,
    },
    /// A thread was charged stall cycles (at the charging instruction).
    Stall {
        /// Cycle the stall was charged at.
        cycle: u64,
        /// Hardware context of the stalling thread.
        ctx: u8,
        /// Stalling software thread.
        tid: u32,
        /// What the cycles were charged to.
        kind: StallKind,
        /// Charged stall cycles.
        cycles: u32,
    },
    /// A cache access missed.
    CacheMiss {
        /// Access cycle.
        cycle: u64,
        /// Hardware context of the accessing thread.
        ctx: u8,
        /// Which cache missed.
        cache: CacheKind,
        /// Accessed byte address (per-thread offsets included).
        addr: u64,
        /// Whether the access was a store (always `false` for I$).
        is_store: bool,
    },
    /// A thread was installed on a context for the first time.
    ContextAdmit {
        /// Installation cycle.
        cycle: u64,
        /// Target hardware context.
        ctx: u8,
        /// Installed software thread.
        tid: u32,
    },
    /// A thread was evicted from its context at a quantum expiry.
    ContextEvict {
        /// Eviction cycle.
        cycle: u64,
        /// Vacated hardware context.
        ctx: u8,
        /// Evicted software thread.
        tid: u32,
    },
    /// A previously-run thread was reinstalled on a context.
    ContextRefill {
        /// Reinstallation cycle.
        cycle: u64,
        /// Target hardware context.
        ctx: u8,
        /// Reinstalled software thread.
        tid: u32,
    },
    /// A refill placed a thread on a *different* context than its last one
    /// (a migration: cold merge paths, changed cluster rotation).
    ThreadMigration {
        /// Migration (reinstallation) cycle.
        cycle: u64,
        /// Migrating software thread.
        tid: u32,
        /// Context the thread last ran on.
        from_ctx: u8,
        /// Context the thread now runs on.
        to_ctx: u8,
    },
    /// The set of issuing contexts changed between consecutive cycles —
    /// threads merged into or split out of the shared issue bundle.
    MergeTransition {
        /// First cycle with the new mask.
        cycle: u64,
        /// Issuing-context bitmask of the previous cycle.
        from_mask: u8,
        /// Issuing-context bitmask of this cycle.
        to_mask: u8,
    },
    /// A software thread arrived at the machine (open-system mode): it
    /// entered the admission queue, or was shed at its door.
    ThreadArrival {
        /// Arrival cycle.
        cycle: u64,
        /// Arriving software thread.
        tid: u32,
        /// Whether the bounded admission queue rejected the arrival.
        shed: bool,
    },
    /// The admission-queue depth changed (open-system mode).
    QueueDepth {
        /// Cycle of the change.
        cycle: u64,
        /// Queued threads after the change.
        depth: u32,
    },
    /// The fleet dispatcher routed an arriving thread to a machine
    /// (fleet mode): the thread then hits that machine's admission queue.
    RoutedTo {
        /// Routing (arrival) cycle.
        cycle: u64,
        /// Routed software thread.
        tid: u32,
        /// Receiving machine's index in fleet order.
        to: u32,
    },
}

impl TraceEvent {
    /// The cycle this event happened at.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::BundleIssue { cycle, .. }
            | TraceEvent::Stall { cycle, .. }
            | TraceEvent::CacheMiss { cycle, .. }
            | TraceEvent::ContextAdmit { cycle, .. }
            | TraceEvent::ContextEvict { cycle, .. }
            | TraceEvent::ContextRefill { cycle, .. }
            | TraceEvent::ThreadMigration { cycle, .. }
            | TraceEvent::MergeTransition { cycle, .. }
            | TraceEvent::ThreadArrival { cycle, .. }
            | TraceEvent::QueueDepth { cycle, .. }
            | TraceEvent::RoutedTo { cycle, .. } => cycle,
        }
    }

    /// Stable kebab-case name of the event variant, used by the JSONL and
    /// CSV exporters.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::BundleIssue { .. } => "bundle-issue",
            TraceEvent::Stall { .. } => "stall",
            TraceEvent::CacheMiss { .. } => "cache-miss",
            TraceEvent::ContextAdmit { .. } => "context-admit",
            TraceEvent::ContextEvict { .. } => "context-evict",
            TraceEvent::ContextRefill { .. } => "context-refill",
            TraceEvent::ThreadMigration { .. } => "thread-migration",
            TraceEvent::MergeTransition { .. } => "merge-transition",
            TraceEvent::ThreadArrival { .. } => "thread-arrival",
            TraceEvent::QueueDepth { .. } => "queue-depth",
            TraceEvent::RoutedTo { .. } => "routed-to",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_accessor_covers_every_variant() {
        let events = [
            TraceEvent::BundleIssue {
                cycle: 1,
                ctx: 0,
                tid: 0,
                ops: 4,
            },
            TraceEvent::Stall {
                cycle: 2,
                ctx: 0,
                tid: 0,
                kind: StallKind::DCacheMiss,
                cycles: 20,
            },
            TraceEvent::CacheMiss {
                cycle: 3,
                ctx: 1,
                cache: CacheKind::Data,
                addr: 0x40,
                is_store: true,
            },
            TraceEvent::ContextAdmit {
                cycle: 4,
                ctx: 2,
                tid: 1,
            },
            TraceEvent::ContextEvict {
                cycle: 5,
                ctx: 2,
                tid: 1,
            },
            TraceEvent::ContextRefill {
                cycle: 6,
                ctx: 3,
                tid: 1,
            },
            TraceEvent::ThreadMigration {
                cycle: 7,
                tid: 1,
                from_ctx: 2,
                to_ctx: 3,
            },
            TraceEvent::MergeTransition {
                cycle: 8,
                from_mask: 0b0011,
                to_mask: 0b0111,
            },
            TraceEvent::ThreadArrival {
                cycle: 9,
                tid: 2,
                shed: false,
            },
            TraceEvent::QueueDepth {
                cycle: 10,
                depth: 3,
            },
            TraceEvent::RoutedTo {
                cycle: 11,
                tid: 2,
                to: 1,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.cycle(), i as u64 + 1);
            assert!(!e.name().is_empty());
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(StallKind::ICacheMiss.label(), "icache");
        assert_eq!(StallKind::DCacheMiss.label(), "dcache");
        assert_eq!(StallKind::BranchBubble.label(), "branch");
        assert_eq!(CacheKind::Instruction.to_string(), "icache");
        assert_eq!(CacheKind::Data.to_string(), "dcache");
    }
}
