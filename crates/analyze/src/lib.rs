//! # vliw-analyze — independent static verification of compiled VLIW images
//!
//! The compiler pipeline verifies its own output only in debug builds
//! (`CompileOptions::verify`), and a checker embedded in the producer
//! shares the producer's blind spots anyway. This crate re-validates a
//! compiled [`Program`] (or a whole [`BenchmarkImage`]) from scratch,
//! trusting nothing but the ISA's documented contracts:
//!
//! * [`mod@cfg`] — CFG reconstruction from terminator descriptors; block and
//!   entry existence, contiguous address layout (re-derived from the
//!   encoding rules), target validity, terminator/branch-op agreement.
//! * [`bundles`] — bundle legality against the machine geometry with an
//!   *independently re-derived* slot plan; operand locality, register
//!   ranges, annotation consistency, merge-signature recomputation.
//! * [`dataflow`] — def-before-use on all CFG paths (seeded by the image's
//!   declared live-ins), trailing-latency containment, unreachable-block /
//!   dead-write / duplicate-write lints.
//! * [`bounds`] — per-block static lower bounds on schedule length and the
//!   program's IPC ceiling, so dynamic measurements can be cross-checked
//!   against static theorems.
//!
//! Findings are typed [`Diagnostic`]s with byte-stable text and JSON
//! renderings; the `paper --lint` frontend audits every Table-1 benchmark
//! on every geometry preset and CI gates on Error-severity findings.

#![deny(missing_docs)]

pub mod bounds;
pub mod bundles;
pub mod cfg;
pub mod dataflow;
pub mod diag;

pub use bounds::{compute_bounds, BlockBounds, ProgramBounds};
pub use cfg::{build_cfg, check_structure, Cfg};
pub use diag::{Diagnostic, Location, Rule, Severity};

use vliw_compiler::Program;
use vliw_isa::MachineConfig;
use vliw_workloads::BenchmarkImage;

/// Analyzer knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyzeOptions {
    /// Enable the pedantic lints ([`Rule::DeadWrite`],
    /// [`Rule::DuplicateWrite`]). The register allocator's blind
    /// round-robin reuse makes both fire on perfectly correct shipped
    /// images, so they are off by default and excluded from CI gates.
    pub pedantic: bool,
}

/// The result of analyzing one program on one machine.
#[derive(Debug, Clone)]
pub struct Report {
    /// Name of the analyzed program.
    pub program: String,
    /// All findings, sorted by location then rule (deterministic).
    pub diagnostics: Vec<Diagnostic>,
    /// Static performance bounds (empty block list when the program was
    /// too malformed to index into).
    pub bounds: ProgramBounds,
}

impl Report {
    /// Number of Error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of Warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// True when the analyzer found nothing at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render as stable, line-oriented text: a summary line, then one line
    /// per finding.
    pub fn render_text(&self) -> String {
        let mut out = if self.is_clean() {
            format!("{}: clean\n", self.program)
        } else {
            format!(
                "{}: {} error(s), {} warning(s)\n",
                self.program,
                self.errors(),
                self.warnings()
            )
        };
        for d in &self.diagnostics {
            out.push_str("  ");
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// Render as a single JSON object (stable key order, `{:.4}` floats,
    /// hand-escaped strings — no serialization dependency).
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"program\":\"");
        out.push_str(&json_escape(&self.program));
        out.push_str("\",\"errors\":");
        out.push_str(&self.errors().to_string());
        out.push_str(",\"warnings\":");
        out.push_str(&self.warnings().to_string());
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"severity\":\"");
            out.push_str(&d.severity.to_string());
            out.push_str("\",\"rule\":\"");
            out.push_str(d.rule.name());
            out.push_str("\",\"block\":");
            match d.location.block {
                Some(b) => out.push_str(&b.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"instr\":");
            match d.location.instr {
                Some(i) => out.push_str(&i.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"message\":\"");
            out.push_str(&json_escape(&d.message));
            out.push_str("\"}");
        }
        out.push_str("],\"bounds\":{\"total_issue\":");
        out.push_str(&self.bounds.total_issue.to_string());
        out.push_str(",\"ipc_ceiling\":");
        out.push_str(&format!("{:.4}", self.bounds.ipc_ceiling()));
        out.push_str(",\"blocks\":[");
        for (i, b) in self.bounds.blocks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"block\":{},\"n_instrs\":{},\"n_ops\":{},\"min_cycles\":{},\"density\":{:.4}}}",
                b.block,
                b.n_instrs,
                b.n_ops,
                b.min_cycles,
                b.density()
            ));
        }
        out.push_str("]}}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Memory-stream validity: every stream id a memory op carries must exist
/// in the program's declared count and (when known) the image's table.
fn check_streams(program: &Program, stream_table: Option<usize>, diags: &mut Vec<Diagnostic>) {
    if let Some(len) = stream_table {
        if program.n_streams as usize > len {
            diags.push(Diagnostic::error(
                Rule::StreamTableMismatch,
                Location::program(),
                format!(
                    "program declares {} streams, image table has {len}",
                    program.n_streams
                ),
            ));
        }
    }
    for (bid, b) in program.blocks.iter().enumerate() {
        for (i, instr) in b.instrs.iter().enumerate() {
            for op in instr.ops() {
                let Some(mem) = op.mem else { continue };
                let s = mem.stream as usize;
                if s >= program.n_streams as usize {
                    diags.push(Diagnostic::error(
                        Rule::BadStream,
                        Location::instr(bid as u32, i),
                        format!(
                            "{} names stream {s}, program declares {}",
                            op.opcode, program.n_streams
                        ),
                    ));
                } else if stream_table.is_some_and(|len| s >= len) {
                    diags.push(Diagnostic::error(
                        Rule::BadStream,
                        Location::instr(bid as u32, i),
                        format!(
                            "{} names stream {s}, beyond the {}-entry image table",
                            op.opcode,
                            stream_table.unwrap_or(0)
                        ),
                    ));
                }
            }
        }
    }
}

/// Analyze `program` as compiled for `machine`.
///
/// `stream_table` is the length of the image's stream table when one is
/// available (pass `None` for a bare program). Deeper passes are skipped
/// when the structural pass finds the program unindexable (no blocks or
/// entry out of range).
pub fn analyze_program(
    machine: &MachineConfig,
    program: &Program,
    stream_table: Option<usize>,
    opts: AnalyzeOptions,
) -> Report {
    let mut diags = Vec::new();
    let indexable = cfg::check_structure(machine, program, &mut diags);
    let bounds = if indexable {
        bundles::check_bundles(machine, program, &mut diags);
        let graph = cfg::build_cfg(program);
        dataflow::check_dataflow(machine, program, &graph, opts.pedantic, &mut diags);
        check_streams(program, stream_table, &mut diags);
        bounds::compute_bounds(machine, program)
    } else {
        ProgramBounds {
            blocks: Vec::new(),
            total_issue: machine.total_issue(),
        }
    };
    diags.sort_by(|a, b| (a.location, a.rule, &a.message).cmp(&(b.location, b.rule, &b.message)));
    Report {
        program: program.name.clone(),
        diagnostics: diags,
        bounds,
    }
}

/// Analyze a full benchmark image against the machine it names.
pub fn analyze_image(image: &BenchmarkImage, opts: AnalyzeOptions) -> Report {
    analyze_program(
        &image.machine,
        &image.program,
        Some(image.streams.len()),
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_image_is_clean() {
        let m = MachineConfig::paper_baseline();
        let img = vliw_workloads::build_named("idct", &m).unwrap();
        let r = analyze_image(&img, AnalyzeOptions::default());
        assert!(r.is_clean(), "{}", r.render_text());
        assert!(r.bounds.ipc_ceiling() > 0.0);
        assert_eq!(r.bounds.blocks.len(), img.program.blocks.len());
    }

    #[test]
    fn bad_stream_detected() {
        let m = MachineConfig::paper_baseline();
        let mut img = vliw_workloads::build_named("idct", &m).unwrap();
        'outer: for b in &mut img.program.blocks {
            for instr in &mut b.instrs {
                let mut ops = instr.ops().to_vec();
                let mut hit = false;
                for op in &mut ops {
                    if let Some(mem) = &mut op.mem {
                        mem.stream = 500;
                        hit = true;
                        break;
                    }
                }
                if hit {
                    *instr = vliw_isa::VliwInstruction::from_ops_unchecked(ops);
                    break 'outer;
                }
            }
        }
        let r = analyze_image(&img, AnalyzeOptions::default());
        assert!(
            r.diagnostics.iter().any(|d| d.rule == Rule::BadStream),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn json_rendering_is_wellformed_and_stable() {
        let m = MachineConfig::paper_baseline();
        let img = vliw_workloads::build_named("cjpeg", &m).unwrap();
        let a = analyze_image(&img, AnalyzeOptions::default()).render_json();
        let b = analyze_image(&img, AnalyzeOptions::default()).render_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"program\":\"cjpeg\",\"errors\":0,\"warnings\":0,"));
        assert!(a.ends_with("]}}"));
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn malformed_program_short_circuits() {
        let p = Program::new("empty".into(), vec![], 0, 0, vec![]);
        let r = analyze_program(
            &MachineConfig::paper_baseline(),
            &p,
            None,
            AnalyzeOptions::default(),
        );
        assert_eq!(r.errors(), 1);
        assert!(r.diagnostics[0].rule == Rule::NoBlocks);
        assert!(r.bounds.blocks.is_empty());
    }
}
