//! Static per-block performance bounds.
//!
//! Two numbers per block, both provable from the image alone:
//!
//! * `min_cycles` — a resource-theorem lower bound on the block's schedule
//!   length: with `k` operations of one class on a cluster owning `cap`
//!   units of it, pigeonhole forces at least `ceil(k / cap)` cycles (and
//!   likewise for total issue). Any legal schedule, including the
//!   compiler's, satisfies `n_instrs >= min_cycles`.
//! * `density` — static operations per instruction, an upper bound on the
//!   IPC any traversal of the block can contribute (blocks execute start
//!   to end, one instruction per cycle at best).
//!
//! The program-level [`ProgramBounds::ipc_ceiling`] is therefore a sound
//! upper bound on simulated single-threaded IPC, which the differential
//! test suite cross-checks against `RunStats` measurements.

use vliw_compiler::Program;
use vliw_isa::{MachineConfig, OpClass};

/// Static bounds for one block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockBounds {
    /// Block id.
    pub block: u32,
    /// Scheduled length in instructions (= cycles when not stalled).
    pub n_instrs: usize,
    /// Total operations in the block.
    pub n_ops: usize,
    /// Resource-theorem lower bound on any legal schedule of these ops.
    pub min_cycles: usize,
}

impl BlockBounds {
    /// Static operations per instruction — the block's IPC ceiling.
    pub fn density(&self) -> f64 {
        self.n_ops as f64 / self.n_instrs.max(1) as f64
    }
}

/// Static bounds for a whole program on one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramBounds {
    /// Per-block bounds, indexed by block id.
    pub blocks: Vec<BlockBounds>,
    /// The machine's total issue width (clusters × slots).
    pub total_issue: usize,
}

impl ProgramBounds {
    /// Upper bound on single-threaded IPC of any run of this program:
    /// no traversal can beat the densest block, and nothing beats the
    /// machine's issue width.
    pub fn ipc_ceiling(&self) -> f64 {
        let densest = self
            .blocks
            .iter()
            .map(BlockBounds::density)
            .fold(0.0f64, f64::max);
        densest.min(self.total_issue as f64)
    }
}

/// Compute static bounds for `program` on `machine`.
pub fn compute_bounds(machine: &MachineConfig, program: &Program) -> ProgramBounds {
    let nc = machine.n_clusters as usize;
    let blocks = program
        .blocks
        .iter()
        .enumerate()
        .map(|(bid, b)| {
            // Per-(cluster, class) op counts and per-cluster totals.
            let mut counts = vec![[0usize; 4]; nc];
            let mut cluster_total = vec![0usize; nc];
            let mut n_ops = 0usize;
            for instr in &b.instrs {
                n_ops += instr.n_ops();
                for op in instr.ops() {
                    let c = op.cluster as usize;
                    if c < nc {
                        counts[c][op.class().index()] += 1;
                        cluster_total[c] += 1;
                    }
                }
            }
            let mut min_cycles = usize::from(n_ops > 0);
            for c in 0..nc {
                min_cycles =
                    min_cycles.max(cluster_total[c].div_ceil(machine.issue_per_cluster as usize));
                for class in OpClass::ALL {
                    let cap = machine.class_capacity(c as u8, class) as usize;
                    let k = counts[c][class.index()];
                    if k > 0 && cap > 0 {
                        min_cycles = min_cycles.max(k.div_ceil(cap));
                    }
                }
            }
            BlockBounds {
                block: bid as u32,
                n_instrs: b.instrs.len(),
                n_ops,
                min_cycles,
            }
        })
        .collect();
    ProgramBounds {
        blocks,
        total_issue: machine.total_issue(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_compiler::TermKind;
    use vliw_isa::{Opcode, Operation, Reg, VliwInstruction};

    #[test]
    fn resource_bound_respects_unit_counts() {
        // 5 multiplies on one cluster with 2 multipliers → at least 3 cycles.
        let m = MachineConfig::paper_baseline();
        let mut ops = Vec::new();
        for i in 0..5u16 {
            let mut o = Operation::new(Opcode::Mpy, 0).with_dest(Reg::new(0, i));
            o.slot = (i % 8) as u8;
            ops.push(o);
        }
        let p = Program::new(
            "t".into(),
            vec![(
                vec![VliwInstruction::from_ops_unchecked(ops)],
                TermKind::Return,
            )],
            0,
            0,
            vec![],
        );
        let b = compute_bounds(&m, &p);
        assert_eq!(b.blocks[0].min_cycles, 3);
        assert_eq!(b.blocks[0].n_ops, 5);
    }

    #[test]
    fn ipc_ceiling_caps_at_issue_width() {
        let m = MachineConfig::paper_baseline();
        let pb = ProgramBounds {
            blocks: vec![BlockBounds {
                block: 0,
                n_instrs: 1,
                n_ops: 99,
                min_cycles: 1,
            }],
            total_issue: m.total_issue(),
        };
        assert_eq!(pb.ipc_ceiling(), 16.0);
    }

    #[test]
    fn compiled_blocks_meet_their_bound() {
        let m = MachineConfig::paper_baseline();
        let img = vliw_workloads::build_named("idct", &m).unwrap();
        let b = compute_bounds(&m, &img.program);
        for bb in &b.blocks {
            assert!(
                bb.n_instrs >= bb.min_cycles,
                "block {}: {} < {}",
                bb.block,
                bb.n_instrs,
                bb.min_cycles
            );
        }
        assert!(b.ipc_ceiling() > 0.0);
    }
}
