//! Typed diagnostics: severity, rule identity, location, message.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not unsound: the image still runs correctly on its
    /// machine (e.g. an unreachable block wastes I-cache space).
    Warning,
    /// The image violates a hard invariant of the machine or of the
    /// program format; simulating it is meaningless or undefined.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The catalog of checks the analyzer performs. Each rule has a stable
/// kebab-case name used in text and JSON renderings (and in CI gates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    // -- structure / CFG ------------------------------------------------
    /// The program has no blocks at all.
    NoBlocks,
    /// The entry block id names no block.
    EntryOutOfRange,
    /// A block carries no instructions (the pipeline pads with a nop).
    EmptyBlock,
    /// A block's address table disagrees in length with its instructions.
    LayoutMismatch,
    /// Instruction addresses are not the contiguous layout re-derived from
    /// the encoding rules.
    AddressGap,
    /// A jump/branch terminator targets a nonexistent block.
    BadTarget,
    /// The last block falls through (or branches not-taken) off the end.
    FallsOffEnd,
    /// A branch-terminated block lacks the branch operation in its last
    /// instruction (on machines with branch units).
    MissingBranchOp,
    /// A branch operation appears where none belongs (fall-through block,
    /// non-final instruction, or a machine without branch units).
    SpuriousBranchOp,
    /// The branch operation disagrees with the block terminator (opcode
    /// kind, target block or taken probability).
    BranchMismatch,
    // -- bundle legality ------------------------------------------------
    /// An operation names a cluster the machine does not have.
    BadCluster,
    /// An operation's slot index is outside the cluster issue width.
    BadSlot,
    /// Two operations occupy the same (cluster, slot).
    DuplicateSlot,
    /// An operation sits on a slot its class cannot execute on.
    ClassSlotMismatch,
    /// More operations of one class on a cluster than it has units.
    ClassOverCapacity,
    /// An operand register lives in a different cluster's file than the
    /// executing cluster (copies excepted for their destination).
    CrossClusterOperand,
    /// A register index beyond the cluster register file.
    BadRegister,
    /// Annotation/opcode mismatch: memory op without stream info, branch
    /// op without branch info, info on the wrong class, store flag or
    /// destination presence disagreeing with the opcode, probability out
    /// of range.
    BadAnnotation,
    /// The instruction's precomputed merge signature disagrees with its
    /// operations (the merge hardware trusts signatures blindly).
    BadSignature,
    // -- dataflow -------------------------------------------------------
    /// A register may be read before any write on some path from entry,
    /// and is not a declared live-in.
    UndefinedRead,
    /// An operation's result completes after its block's last cycle
    /// (the schedule's trailing-latency rule).
    OpOutlivesBlock,
    /// A block no path from entry reaches.
    UnreachableBlock,
    /// A register written but never read anywhere in the program
    /// (pedantic: the register allocator's blind round-robin makes these
    /// common in correct code).
    DeadWrite,
    /// Two same-cycle writes to one physical register (pedantic: benign
    /// under the allocator's register reuse, since the simulator is
    /// timing-only).
    DuplicateWrite,
    // -- streams --------------------------------------------------------
    /// A memory operation names a stream id outside the program's declared
    /// stream count or the image's stream table.
    BadStream,
    /// The program declares more streams than the image's table provides.
    StreamTableMismatch,
}

impl Rule {
    /// Stable kebab-case rule name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoBlocks => "no-blocks",
            Rule::EntryOutOfRange => "entry-out-of-range",
            Rule::EmptyBlock => "empty-block",
            Rule::LayoutMismatch => "layout-mismatch",
            Rule::AddressGap => "address-gap",
            Rule::BadTarget => "bad-target",
            Rule::FallsOffEnd => "falls-off-end",
            Rule::MissingBranchOp => "missing-branch-op",
            Rule::SpuriousBranchOp => "spurious-branch-op",
            Rule::BranchMismatch => "branch-mismatch",
            Rule::BadCluster => "bad-cluster",
            Rule::BadSlot => "bad-slot",
            Rule::DuplicateSlot => "duplicate-slot",
            Rule::ClassSlotMismatch => "class-slot-mismatch",
            Rule::ClassOverCapacity => "class-over-capacity",
            Rule::CrossClusterOperand => "cross-cluster-operand",
            Rule::BadRegister => "bad-register",
            Rule::BadAnnotation => "bad-annotation",
            Rule::BadSignature => "bad-signature",
            Rule::UndefinedRead => "undefined-read",
            Rule::OpOutlivesBlock => "op-outlives-block",
            Rule::UnreachableBlock => "unreachable-block",
            Rule::DeadWrite => "dead-write",
            Rule::DuplicateWrite => "duplicate-write",
            Rule::BadStream => "bad-stream",
            Rule::StreamTableMismatch => "stream-table-mismatch",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where in the program a finding anchors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Location {
    /// Block id, if the finding is block-scoped.
    pub block: Option<u32>,
    /// Instruction index within the block, if instruction-scoped.
    pub instr: Option<u32>,
}

impl Location {
    /// A program-scoped location (no block).
    pub fn program() -> Self {
        Location::default()
    }

    /// A block-scoped location.
    pub fn block(block: u32) -> Self {
        Location {
            block: Some(block),
            instr: None,
        }
    }

    /// An instruction-scoped location.
    pub fn instr(block: u32, instr: usize) -> Self {
        Location {
            block: Some(block),
            instr: Some(instr as u32),
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.block, self.instr) {
            (Some(b), Some(i)) => write!(f, "block {b} instr {i}"),
            (Some(b), None) => write!(f, "block {b}"),
            _ => write!(f, "program"),
        }
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Which check fired.
    pub rule: Rule,
    /// Where it anchors.
    pub location: Location,
    /// Human-readable detail.
    pub message: String,
}

impl Diagnostic {
    /// Build an error diagnostic.
    pub fn error(rule: Rule, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            rule,
            location,
            message: message.into(),
        }
    }

    /// Build a warning diagnostic.
    pub fn warning(rule: Rule, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            rule,
            location,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule, self.location, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_stable() {
        let d = Diagnostic::error(Rule::BadSlot, Location::instr(2, 0), "slot 9 out of range");
        assert_eq!(
            d.to_string(),
            "error[bad-slot] block 2 instr 0: slot 9 out of range"
        );
        let w = Diagnostic::warning(Rule::UnreachableBlock, Location::block(3), "no path");
        assert_eq!(w.to_string(), "warning[unreachable-block] block 3: no path");
        let p = Diagnostic::error(Rule::NoBlocks, Location::program(), "empty");
        assert_eq!(p.to_string(), "error[no-blocks] program: empty");
    }

    #[test]
    fn severities_order() {
        assert!(Severity::Error > Severity::Warning);
    }
}
