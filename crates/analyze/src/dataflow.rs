//! Register dataflow over physical registers.
//!
//! Three families of checks:
//!
//! * **Undefined reads** — a forward *must-define* analysis over the
//!   reconstructed CFG proves every read is covered on all paths from the
//!   entry block, seeded by the program's declared live-in set. Same-cycle
//!   writes do *not* cover reads: VLIW register-file semantics deliver the
//!   old value to every operation in the issuing instruction.
//! * **Trailing latency** — the scheduler pads each block so every
//!   operation *completes* inside it (issue cycle + latency ≤ block
//!   length); a schedule violating this leaks writebacks into an
//!   unpredictable successor block.
//! * **Pedantic lints** — dead writes and same-cycle duplicate writes.
//!   The register allocator's blind round-robin reuse makes both common
//!   in perfectly correct images, so they stay behind
//!   [`AnalyzeOptions::pedantic`](crate::AnalyzeOptions) and never gate CI.

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, Location, Rule};
use vliw_compiler::Program;
use vliw_isa::{MachineConfig, Reg};

/// Dense bitset over `n_clusters * regs_per_cluster` physical registers.
#[derive(Clone, PartialEq, Eq)]
struct RegSet {
    words: Vec<u64>,
}

impl RegSet {
    fn empty(nbits: usize) -> Self {
        RegSet {
            words: vec![0; nbits.div_ceil(64)],
        }
    }

    fn full(nbits: usize) -> Self {
        let mut s = Self::empty(nbits);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s
    }

    fn insert(&mut self, bit: usize) {
        self.words[bit / 64] |= 1 << (bit % 64);
    }

    fn contains(&self, bit: usize) -> bool {
        self.words[bit / 64] & (1 << (bit % 64)) != 0
    }

    /// `self &= other`; returns whether `self` changed.
    fn intersect_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    fn union_with(&mut self, other: &RegSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

/// Dense key for a physical register; `None` when the register is outside
/// the machine (those are the bundle pass's findings, not ours).
fn key(machine: &MachineConfig, r: Reg) -> Option<usize> {
    if r.cluster >= machine.n_clusters || r.index >= machine.regs_per_cluster {
        return None;
    }
    Some(r.cluster as usize * machine.regs_per_cluster as usize + r.index as usize)
}

/// Run the dataflow checks. `cfg` must come from
/// [`build_cfg`](crate::cfg::build_cfg) on the same program.
pub fn check_dataflow(
    machine: &MachineConfig,
    program: &Program,
    cfg: &Cfg,
    pedantic: bool,
    diags: &mut Vec<Diagnostic>,
) {
    let nb = program.blocks.len();
    let nbits = machine.n_clusters as usize * machine.regs_per_cluster as usize;

    for (bid, &r) in cfg.reachable.iter().enumerate() {
        if !r {
            diags.push(Diagnostic::warning(
                Rule::UnreachableBlock,
                Location::block(bid as u32),
                "no path from the entry block reaches this block",
            ));
        }
    }

    // Per-block must-define set: every write executes unconditionally in a
    // VLIW block, so defs(b) is simply all destinations written in b.
    let mut defs: Vec<RegSet> = Vec::with_capacity(nb);
    for b in &program.blocks {
        let mut d = RegSet::empty(nbits);
        for instr in &b.instrs {
            for op in instr.ops() {
                if let Some(k) = op.dest.and_then(|r| key(machine, r)) {
                    d.insert(k);
                }
            }
        }
        defs.push(d);
    }

    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); nb];
    for (bid, succs) in cfg.succs.iter().enumerate() {
        for &s in succs {
            preds[s as usize].push(bid as u32);
        }
    }

    // Live-ins the compiler declares for the entry block, as physical regs.
    let mut entry_in = RegSet::empty(nbits);
    for &r in &program.live_ins {
        if let Some(k) = key(machine, r) {
            entry_in.insert(k);
        }
    }

    // Forward must-define fixpoint, decreasing from TOP. The entry block's
    // boundary fact is its live-in set: the empty path from program start
    // defines exactly those registers, so back edges into the entry can
    // only ever *intersect* with it.
    let mut ins: Vec<RegSet> = (0..nb).map(|_| RegSet::full(nbits)).collect();
    ins[program.entry as usize] = entry_in.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..nb {
            let mut new_in = if b == program.entry as usize {
                entry_in.clone()
            } else if preds[b].is_empty() {
                continue; // unreachable, stays TOP: nothing to report there
            } else {
                RegSet::full(nbits)
            };
            for &p in &preds[b] {
                let mut out = ins[p as usize].clone();
                out.union_with(&defs[p as usize]);
                new_in.intersect_with(&out);
            }
            if new_in != ins[b] {
                ins[b] = new_in;
                changed = true;
            }
        }
    }

    // Flag reads not covered on every path, and trailing-latency escapes.
    for (bid, b) in program.blocks.iter().enumerate() {
        let n = b.instrs.len() as u32;
        let mut defined = ins[bid].clone();
        for (i, instr) in b.instrs.iter().enumerate() {
            let loc = Location::instr(bid as u32, i);
            // Reads see the register file *before* this cycle's writeback.
            for op in instr.ops() {
                for s in op.src_regs() {
                    if let Some(k) = key(machine, s) {
                        if !defined.contains(k) {
                            diags.push(Diagnostic::error(
                                Rule::UndefinedRead,
                                loc,
                                format!(
                                    "{} reads {s}, which is not written on every path here",
                                    op.opcode
                                ),
                            ));
                        }
                    }
                }
                let lat = u32::from(machine.latency_of(op.class()));
                if i as u32 + lat > n {
                    diags.push(Diagnostic::error(
                        Rule::OpOutlivesBlock,
                        loc,
                        format!(
                            "{} (latency {lat}) completes after the block's {n} cycles",
                            op.opcode
                        ),
                    ));
                }
            }
            if pedantic {
                let mut written: Vec<Reg> = Vec::new();
                for op in instr.ops() {
                    if let Some(d) = op.dest {
                        if written.contains(&d) {
                            diags.push(Diagnostic::warning(
                                Rule::DuplicateWrite,
                                loc,
                                format!("{d} written twice in one cycle"),
                            ));
                        }
                        written.push(d);
                    }
                }
            }
            for op in instr.ops() {
                if let Some(k) = op.dest.and_then(|r| key(machine, r)) {
                    defined.insert(k);
                }
            }
        }
    }

    if pedantic {
        check_dead_writes(machine, program, nbits, diags);
    }
}

/// Pedantic: registers written somewhere but read nowhere in the program.
fn check_dead_writes(
    machine: &MachineConfig,
    program: &Program,
    nbits: usize,
    diags: &mut Vec<Diagnostic>,
) {
    let mut read = RegSet::empty(nbits);
    for b in &program.blocks {
        for instr in &b.instrs {
            for op in instr.ops() {
                for s in op.src_regs() {
                    if let Some(k) = key(machine, s) {
                        read.insert(k);
                    }
                }
            }
        }
    }
    let mut reported = RegSet::empty(nbits);
    for (bid, b) in program.blocks.iter().enumerate() {
        for (i, instr) in b.instrs.iter().enumerate() {
            for op in instr.ops() {
                if let Some(d) = op.dest {
                    if let Some(k) = key(machine, d) {
                        if !read.contains(k) && !reported.contains(k) {
                            reported.insert(k);
                            diags.push(Diagnostic::warning(
                                Rule::DeadWrite,
                                Location::instr(bid as u32, i),
                                format!("{d} is written here but never read"),
                            ));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use vliw_compiler::TermKind;
    use vliw_isa::{Opcode, Operation, VliwInstruction};

    fn m() -> MachineConfig {
        MachineConfig::paper_baseline()
    }

    fn op(opc: Opcode, dest: Option<Reg>, srcs: &[Reg]) -> Operation {
        let mut o = Operation::new(
            opc,
            srcs.first()
                .map_or(dest.map_or(0, |d| d.cluster), |s| s.cluster),
        );
        o.dest = dest;
        for (i, &s) in srcs.iter().enumerate() {
            o.srcs[i] = Some(s);
        }
        o
    }

    fn run(program: &Program, pedantic: bool) -> Vec<Diagnostic> {
        let mut d = Vec::new();
        let cfg = build_cfg(program);
        check_dataflow(&m(), program, &cfg, pedantic, &mut d);
        d
    }

    #[test]
    fn covered_read_is_clean() {
        let w =
            VliwInstruction::from_ops_unchecked(vec![op(Opcode::Add, Some(Reg::new(0, 1)), &[])]);
        let pad = VliwInstruction::from_ops_unchecked(vec![]);
        let r = VliwInstruction::from_ops_unchecked(vec![op(
            Opcode::Add,
            Some(Reg::new(0, 2)),
            &[Reg::new(0, 1)],
        )]);
        let p = Program::new(
            "t".into(),
            vec![(vec![w, pad.clone(), r, pad], TermKind::Return)],
            0,
            0,
            vec![],
        );
        let d = run(&p, false);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn same_cycle_write_does_not_cover_read() {
        let both = VliwInstruction::from_ops_unchecked(vec![
            op(Opcode::Add, Some(Reg::new(0, 1)), &[]),
            op(Opcode::Sub, Some(Reg::new(0, 2)), &[Reg::new(0, 1)]),
        ]);
        let pad = VliwInstruction::from_ops_unchecked(vec![]);
        let p = Program::new(
            "t".into(),
            vec![(vec![both, pad], TermKind::Return)],
            0,
            0,
            vec![],
        );
        let d = run(&p, false);
        assert!(d.iter().any(|x| x.rule == Rule::UndefinedRead), "{d:?}");
    }

    #[test]
    fn live_in_covers_entry_read() {
        let r = VliwInstruction::from_ops_unchecked(vec![op(
            Opcode::Add,
            Some(Reg::new(0, 2)),
            &[Reg::new(0, 7)],
        )]);
        let pad = VliwInstruction::from_ops_unchecked(vec![]);
        let blocks = vec![(vec![r, pad], TermKind::Return)];
        let bare = Program::new("t".into(), blocks.clone(), 0, 0, vec![]);
        assert!(run(&bare, false)
            .iter()
            .any(|x| x.rule == Rule::UndefinedRead));
        let declared = Program::new("t".into(), blocks, 0, 0, vec![Reg::new(0, 7)]);
        let d = run(&declared, false);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn must_def_requires_all_paths() {
        // entry: cond-branch to 2; block 1 defines r5 and falls through;
        // block 2 reads r5 — defined on the fall-through path only.
        let pad = VliwInstruction::from_ops_unchecked(vec![]);
        let def =
            VliwInstruction::from_ops_unchecked(vec![op(Opcode::Add, Some(Reg::new(1, 5)), &[])]);
        let read = VliwInstruction::from_ops_unchecked(vec![op(
            Opcode::Add,
            Some(Reg::new(1, 6)),
            &[Reg::new(1, 5)],
        )]);
        let p = Program::new(
            "t".into(),
            vec![
                (
                    vec![pad.clone()],
                    TermKind::CondBranch {
                        taken: 2,
                        taken_permille: 500,
                    },
                ),
                (vec![def], TermKind::FallThrough),
                (vec![read, pad], TermKind::Return),
            ],
            0,
            0,
            vec![],
        );
        let d = run(&p, false);
        assert!(d.iter().any(|x| x.rule == Rule::UndefinedRead), "{d:?}");
    }

    #[test]
    fn trailing_latency_violation_detected() {
        // A multiply (latency 2) in a 1-cycle block.
        let mul =
            VliwInstruction::from_ops_unchecked(vec![op(Opcode::Mpy, Some(Reg::new(0, 1)), &[])]);
        let p = Program::new(
            "t".into(),
            vec![(vec![mul], TermKind::Return)],
            0,
            0,
            vec![],
        );
        let d = run(&p, false);
        assert!(d.iter().any(|x| x.rule == Rule::OpOutlivesBlock), "{d:?}");
    }

    #[test]
    fn pedantic_lints_gated() {
        let dead =
            VliwInstruction::from_ops_unchecked(vec![op(Opcode::Add, Some(Reg::new(0, 9)), &[])]);
        let p = Program::new(
            "t".into(),
            vec![(vec![dead], TermKind::Return)],
            0,
            0,
            vec![],
        );
        assert!(run(&p, false).iter().all(|x| x.rule != Rule::DeadWrite));
        assert!(run(&p, true).iter().any(|x| x.rule == Rule::DeadWrite));
    }

    #[test]
    fn unreachable_block_warned() {
        let pad = VliwInstruction::from_ops_unchecked(vec![]);
        let p = Program::new(
            "t".into(),
            vec![
                (vec![pad.clone()], TermKind::Return),
                (vec![pad], TermKind::Return),
            ],
            0,
            0,
            vec![],
        );
        let d = run(&p, false);
        assert!(
            d.iter()
                .any(|x| x.rule == Rule::UnreachableBlock && x.location.block == Some(1)),
            "{d:?}"
        );
    }
}
