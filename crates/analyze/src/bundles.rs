//! Bundle-legality re-verification against the machine geometry.
//!
//! This pass re-implements the slot-plan rules from the documented
//! fixed-slot layout (multipliers on the lowest slots, memory units next,
//! the branch unit on the highest slot, ALUs everywhere) instead of calling
//! into `InstrBuilder` — deliberately, so a compiler or builder bug cannot
//! hide from its own checker. It also re-derives every instruction's merge
//! signature from its operations and compares it with the precomputed one
//! the merge hardware trusts.

use crate::diag::{Diagnostic, Location, Rule};
use vliw_compiler::Program;
use vliw_isa::{MachineConfig, OpClass, Operation};

/// Independently re-derived slot mask for `class` on `cluster`.
///
/// Mirrors the paper's footnote 1 layout contract, not the
/// `MachineConfig::slot_plan` implementation.
fn slots_for(machine: &MachineConfig, cluster: u8, class: OpClass) -> u8 {
    let lo = |n: u8| -> u8 {
        if n >= 8 {
            0xFF
        } else {
            (1u8 << n) - 1
        }
    };
    match class {
        OpClass::Alu => lo(machine.issue_per_cluster),
        OpClass::Mul => lo(machine.muls_per_cluster),
        OpClass::Mem => lo(machine.mems_per_cluster) << machine.muls_per_cluster,
        OpClass::Branch => {
            if machine.branch_clusters & (1 << cluster) != 0 {
                1u8 << (machine.issue_per_cluster - 1)
            } else {
                0
            }
        }
    }
}

/// Independently re-derived per-cluster capacity of `class`.
fn capacity(machine: &MachineConfig, cluster: u8, class: OpClass) -> u8 {
    match class {
        OpClass::Alu => machine.issue_per_cluster,
        OpClass::Mul => machine.muls_per_cluster,
        OpClass::Mem => machine.mems_per_cluster,
        OpClass::Branch => u8::from(machine.branch_clusters & (1 << cluster) != 0),
    }
}

/// Check one operation's intra-op invariants (placement geometry aside).
fn check_operation(
    op: &Operation,
    machine: &MachineConfig,
    loc: Location,
    diags: &mut Vec<Diagnostic>,
) {
    // Operand locality: sources always on the executing cluster; the
    // destination too, except for the inter-cluster copy (which, by
    // design, writes the *other* file).
    for s in op.src_regs() {
        if s.cluster != op.cluster {
            diags.push(Diagnostic::error(
                Rule::CrossClusterOperand,
                loc,
                format!("{} reads {s} from cluster {}", op.opcode, op.cluster),
            ));
        } else if s.index >= machine.regs_per_cluster {
            diags.push(Diagnostic::error(
                Rule::BadRegister,
                loc,
                format!("{s} beyond the {}-register file", machine.regs_per_cluster),
            ));
        }
    }
    if let Some(d) = op.dest {
        if d.cluster != op.cluster && op.opcode != vliw_isa::Opcode::Copy {
            diags.push(Diagnostic::error(
                Rule::CrossClusterOperand,
                loc,
                format!("{} writes {d} from cluster {}", op.opcode, op.cluster),
            ));
        }
        if d.cluster >= machine.n_clusters {
            diags.push(Diagnostic::error(
                Rule::BadCluster,
                loc,
                format!(
                    "destination {d} names cluster {} (machine has {})",
                    d.cluster, machine.n_clusters
                ),
            ));
        } else if d.index >= machine.regs_per_cluster {
            diags.push(Diagnostic::error(
                Rule::BadRegister,
                loc,
                format!("{d} beyond the {}-register file", machine.regs_per_cluster),
            ));
        }
        if !op.opcode.has_dest() {
            diags.push(Diagnostic::error(
                Rule::BadAnnotation,
                loc,
                format!("{} cannot write a destination", op.opcode),
            ));
        }
    } else if op.opcode.has_dest() {
        diags.push(Diagnostic::error(
            Rule::BadAnnotation,
            loc,
            format!("{} lacks its destination register", op.opcode),
        ));
    }
    // Annotations must match the opcode class.
    match (op.class(), op.mem, op.branch) {
        (OpClass::Mem, None, _) => diags.push(Diagnostic::error(
            Rule::BadAnnotation,
            loc,
            format!("memory op {} lacks its stream annotation", op.opcode),
        )),
        (c, Some(_), _) if c != OpClass::Mem => diags.push(Diagnostic::error(
            Rule::BadAnnotation,
            loc,
            format!("stream annotation on non-memory op {}", op.opcode),
        )),
        _ => {}
    }
    if let Some(m) = op.mem {
        if op.class() == OpClass::Mem && m.is_store != op.opcode.is_store() {
            diags.push(Diagnostic::error(
                Rule::BadAnnotation,
                loc,
                format!("store flag disagrees with opcode {}", op.opcode),
            ));
        }
    }
    match (op.class(), op.branch) {
        (OpClass::Branch, None) => diags.push(Diagnostic::error(
            Rule::BadAnnotation,
            loc,
            format!("branch op {} lacks its branch annotation", op.opcode),
        )),
        (c, Some(_)) if c != OpClass::Branch => diags.push(Diagnostic::error(
            Rule::BadAnnotation,
            loc,
            format!("branch annotation on non-branch op {}", op.opcode),
        )),
        _ => {}
    }
    if let Some(b) = op.branch {
        if b.taken_permille > 1000 {
            diags.push(Diagnostic::error(
                Rule::BadAnnotation,
                loc,
                format!("taken probability {} > 1000 permille", b.taken_permille),
            ));
        }
    }
}

/// Re-verify every instruction word of the program against `machine`.
pub fn check_bundles(machine: &MachineConfig, program: &Program, diags: &mut Vec<Diagnostic>) {
    for (bid, block) in program.blocks.iter().enumerate() {
        for (i, instr) in block.instrs.iter().enumerate() {
            let loc = Location::instr(bid as u32, i);
            // (cluster, slot) occupancy and per-(cluster, class) counts.
            let mut taken = [0u8; vliw_isa::MAX_CLUSTERS];
            let mut counts = [[0u8; 4]; vliw_isa::MAX_CLUSTERS];
            for op in instr.ops() {
                if op.cluster >= machine.n_clusters {
                    diags.push(Diagnostic::error(
                        Rule::BadCluster,
                        loc,
                        format!(
                            "{} on cluster {} (machine has {})",
                            op.opcode, op.cluster, machine.n_clusters
                        ),
                    ));
                    continue;
                }
                if op.slot >= machine.issue_per_cluster {
                    diags.push(Diagnostic::error(
                        Rule::BadSlot,
                        loc,
                        format!(
                            "{} on slot {} (issue width {})",
                            op.opcode, op.slot, machine.issue_per_cluster
                        ),
                    ));
                    check_operation(op, machine, loc, diags);
                    continue;
                }
                let bit = 1u8 << op.slot;
                if taken[op.cluster as usize] & bit != 0 {
                    diags.push(Diagnostic::error(
                        Rule::DuplicateSlot,
                        loc,
                        format!("two operations on cluster {} slot {}", op.cluster, op.slot),
                    ));
                }
                taken[op.cluster as usize] |= bit;
                if slots_for(machine, op.cluster, op.class()) & bit == 0 {
                    diags.push(Diagnostic::error(
                        Rule::ClassSlotMismatch,
                        loc,
                        format!(
                            "{} ({}) cannot execute on cluster {} slot {}",
                            op.opcode,
                            op.class(),
                            op.cluster,
                            op.slot
                        ),
                    ));
                }
                counts[op.cluster as usize][op.class().index()] += 1;
                check_operation(op, machine, loc, diags);
            }
            for c in 0..machine.n_clusters {
                for class in OpClass::ALL {
                    let have = counts[c as usize][class.index()];
                    let cap = capacity(machine, c, class);
                    if have > cap {
                        diags.push(Diagnostic::error(
                            Rule::ClassOverCapacity,
                            loc,
                            format!("{have} {class} ops on cluster {c} (capacity {cap})"),
                        ));
                    }
                }
            }
            check_signature(instr, loc, diags);
        }
    }
}

/// The precomputed merge signature must equal one re-derived from the ops.
fn check_signature(instr: &vliw_isa::VliwInstruction, loc: Location, diags: &mut Vec<Diagnostic>) {
    let sig = instr.signature();
    let mut res = vliw_isa::ResourceVec::zero();
    let mut mask = 0u8;
    for op in instr.ops() {
        if (op.cluster as usize) < vliw_isa::MAX_CLUSTERS {
            res.bump(op.cluster, op.class());
            mask |= 1 << op.cluster;
        }
    }
    if sig.n_ops as usize != instr.n_ops() || sig.clusters != mask || sig.res != res {
        diags.push(Diagnostic::error(
            Rule::BadSignature,
            loc,
            "merge signature disagrees with the instruction's operations".to_string(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_compiler::TermKind;
    use vliw_isa::{InstrBuilder, Opcode, Operation, Reg, VliwInstruction};

    fn m() -> MachineConfig {
        MachineConfig::paper_baseline()
    }

    fn prog(instrs: Vec<VliwInstruction>) -> Program {
        Program::new("t".into(), vec![(instrs, TermKind::Return)], 0, 0, vec![])
    }

    fn diags_for(instrs: Vec<VliwInstruction>) -> Vec<Diagnostic> {
        let mut d = Vec::new();
        check_bundles(&m(), &prog(instrs), &mut d);
        d
    }

    #[test]
    fn legal_word_is_clean() {
        let mach = m();
        let mut b = InstrBuilder::new(&mach);
        b.push(
            Operation::new(Opcode::Add, 0)
                .with_dest(Reg::new(0, 1))
                .with_srcs(&[Reg::new(0, 0)]),
        )
        .unwrap();
        b.push(
            Operation::new(Opcode::Mpy, 1)
                .with_dest(Reg::new(1, 2))
                .with_srcs(&[Reg::new(1, 0), Reg::new(1, 1)]),
        )
        .unwrap();
        let d = diags_for(vec![b.build()]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn duplicate_slot_detected() {
        let a = Operation::new(Opcode::Add, 0).with_dest(Reg::new(0, 1));
        let mut b = Operation::new(Opcode::Sub, 0).with_dest(Reg::new(0, 2));
        b.slot = 0; // collide with a (slot 0)
        let d = diags_for(vec![VliwInstruction::from_ops_unchecked(vec![a, b])]);
        assert!(d.iter().any(|x| x.rule == Rule::DuplicateSlot), "{d:?}");
    }

    #[test]
    fn class_slot_mismatch_detected() {
        // A multiply on slot 3 (ALU/branch territory on the paper machine).
        let mut op = Operation::new(Opcode::Mpy, 0).with_dest(Reg::new(0, 1));
        op.slot = 3;
        let d = diags_for(vec![VliwInstruction::from_ops_unchecked(vec![op])]);
        assert!(d.iter().any(|x| x.rule == Rule::ClassSlotMismatch), "{d:?}");
    }

    #[test]
    fn cross_cluster_operand_detected() {
        let mut op = Operation::new(Opcode::Add, 0).with_dest(Reg::new(0, 1));
        op.srcs[0] = Some(Reg::new(2, 5));
        let d = diags_for(vec![VliwInstruction::from_ops_unchecked(vec![op])]);
        assert!(
            d.iter().any(|x| x.rule == Rule::CrossClusterOperand),
            "{d:?}"
        );
    }

    #[test]
    fn over_capacity_detected() {
        // Three muls on one 2-multiplier cluster, at distinct (stolen) slots.
        let mk = |slot: u8, idx: u16| {
            let mut o = Operation::new(Opcode::Mpy, 0).with_dest(Reg::new(0, idx));
            o.slot = slot;
            o
        };
        let d = diags_for(vec![VliwInstruction::from_ops_unchecked(vec![
            mk(0, 1),
            mk(1, 2),
            mk(2, 3),
        ])]);
        assert!(d.iter().any(|x| x.rule == Rule::ClassOverCapacity), "{d:?}");
        assert!(d.iter().any(|x| x.rule == Rule::ClassSlotMismatch), "{d:?}");
    }

    #[test]
    fn missing_mem_annotation_detected() {
        let mut op = Operation::new(Opcode::Ldw, 0).with_dest(Reg::new(0, 1));
        op.slot = 2;
        op.srcs[0] = Some(Reg::new(0, 0));
        let d = diags_for(vec![VliwInstruction::from_ops_unchecked(vec![op])]);
        assert!(d.iter().any(|x| x.rule == Rule::BadAnnotation), "{d:?}");
    }

    #[test]
    fn independent_slot_plan_matches_machine() {
        // The re-derived plan must agree with the ISA's on every preset —
        // drift between the two is exactly what this pass exists to catch.
        for spec in vliw_isa::MachineSpec::presets() {
            let mach = spec.config();
            for c in 0..mach.n_clusters {
                let plan = mach.slot_plan(c);
                for class in OpClass::ALL {
                    assert_eq!(
                        slots_for(&mach, c, class),
                        plan.slots_for(class),
                        "{spec} cluster {c} class {class}"
                    );
                    assert_eq!(
                        capacity(&mach, c, class),
                        mach.class_capacity(c, class),
                        "{spec} cluster {c} class {class}"
                    );
                }
            }
        }
    }
}
