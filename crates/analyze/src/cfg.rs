//! Control-flow-graph reconstruction and structural well-formedness.
//!
//! The CFG is rebuilt from the [`Program`]'s terminator descriptors alone —
//! nothing is taken on faith from the compiler. Structural checks cover
//! block/entry existence, the contiguous address layout (re-derived from
//! the encoding rules), terminator target validity, and the agreement
//! between each block's terminator descriptor and the branch *operation*
//! the block actually carries (the simulator draws outcomes from the
//! descriptor, but a merged-core's fetch path sees the operation — the two
//! must tell the same story).

use crate::diag::{Diagnostic, Location, Rule};
use vliw_compiler::{Program, TermKind};
use vliw_isa::{encode, MachineConfig, Opcode};

/// The reconstructed control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor block ids per block (out-of-range targets are *omitted*
    /// here and reported as diagnostics; the graph stays indexable).
    pub succs: Vec<Vec<u32>>,
    /// Whether each block is reachable from the entry block.
    pub reachable: Vec<bool>,
}

/// Rebuild the CFG from terminators. Tolerant of malformed programs:
/// out-of-range targets and a missing entry simply produce fewer edges.
pub fn build_cfg(program: &Program) -> Cfg {
    let nb = program.blocks.len();
    let mut succs: Vec<Vec<u32>> = Vec::with_capacity(nb);
    for (bid, b) in program.blocks.iter().enumerate() {
        let mut s = Vec::new();
        match b.term {
            TermKind::FallThrough => {
                if bid + 1 < nb {
                    s.push((bid + 1) as u32);
                }
            }
            TermKind::Jump { target } => {
                if (target as usize) < nb {
                    s.push(target);
                }
            }
            TermKind::CondBranch { taken, .. } => {
                if (taken as usize) < nb {
                    s.push(taken);
                }
                if bid + 1 < nb {
                    s.push((bid + 1) as u32);
                }
            }
            TermKind::Return => {}
        }
        succs.push(s);
    }
    let mut reachable = vec![false; nb];
    if (program.entry as usize) < nb {
        let mut stack = vec![program.entry];
        reachable[program.entry as usize] = true;
        while let Some(b) = stack.pop() {
            for &s in &succs[b as usize] {
                if !reachable[s as usize] {
                    reachable[s as usize] = true;
                    stack.push(s);
                }
            }
        }
    }
    Cfg { succs, reachable }
}

/// Structural checks. Returns `false` when the program is too malformed
/// for the deeper passes to index into (no blocks / entry out of range).
pub fn check_structure(
    machine: &MachineConfig,
    program: &Program,
    diags: &mut Vec<Diagnostic>,
) -> bool {
    let nb = program.blocks.len();
    if nb == 0 {
        diags.push(Diagnostic::error(
            Rule::NoBlocks,
            Location::program(),
            "program has no blocks",
        ));
        return false;
    }
    if program.entry as usize >= nb {
        diags.push(Diagnostic::error(
            Rule::EntryOutOfRange,
            Location::program(),
            format!("entry block {} out of range ({nb} blocks)", program.entry),
        ));
        return false;
    }

    let mut expected_addr = 0u64;
    for (bid, b) in program.blocks.iter().enumerate() {
        let bid32 = bid as u32;
        if b.instrs.is_empty() {
            diags.push(Diagnostic::error(
                Rule::EmptyBlock,
                Location::block(bid32),
                "block has no instructions (nop padding expected)",
            ));
        }
        if b.instrs.len() != b.addrs.len() {
            diags.push(Diagnostic::error(
                Rule::LayoutMismatch,
                Location::block(bid32),
                format!(
                    "{} instructions but {} addresses",
                    b.instrs.len(),
                    b.addrs.len()
                ),
            ));
        } else {
            for (i, (&addr, instr)) in b.addrs.iter().zip(&b.instrs).enumerate() {
                if addr != expected_addr {
                    diags.push(Diagnostic::error(
                        Rule::AddressGap,
                        Location::instr(bid32, i),
                        format!("address {addr} (expected contiguous {expected_addr})"),
                    ));
                    expected_addr = addr; // resynchronise: report each gap once
                }
                expected_addr += encode::encoded_size(instr);
            }
        }

        match b.term {
            TermKind::Jump { target } | TermKind::CondBranch { taken: target, .. } => {
                if target as usize >= nb {
                    diags.push(Diagnostic::error(
                        Rule::BadTarget,
                        Location::block(bid32),
                        format!("terminator targets block {target} ({nb} blocks)"),
                    ));
                }
            }
            TermKind::FallThrough | TermKind::Return => {}
        }
        let falls_off = match b.term {
            TermKind::FallThrough => bid + 1 >= nb,
            TermKind::CondBranch { .. } => bid + 1 >= nb,
            _ => false,
        };
        if falls_off {
            diags.push(Diagnostic::error(
                Rule::FallsOffEnd,
                Location::block(bid32),
                "control falls through past the last block",
            ));
        }

        check_branch_consistency(machine, program, bid, diags);
    }
    true
}

/// The terminator descriptor and the block's branch operation must agree.
fn check_branch_consistency(
    machine: &MachineConfig,
    program: &Program,
    bid: usize,
    diags: &mut Vec<Diagnostic>,
) {
    let b = &program.blocks[bid];
    let bid32 = bid as u32;
    let has_branch_units = machine.branch_clusters != 0;
    let n = b.instrs.len();

    // Branch ops anywhere but the last instruction are always wrong: the
    // block's control transfer happens at its end.
    for (i, instr) in b.instrs.iter().enumerate() {
        let n_branch = instr
            .ops()
            .iter()
            .filter(|o| o.class() == vliw_isa::OpClass::Branch)
            .count();
        if n_branch == 0 {
            continue;
        }
        if !has_branch_units {
            diags.push(Diagnostic::error(
                Rule::SpuriousBranchOp,
                Location::instr(bid32, i),
                "branch operation on a machine without branch units",
            ));
            continue;
        }
        if i + 1 != n {
            diags.push(Diagnostic::error(
                Rule::SpuriousBranchOp,
                Location::instr(bid32, i),
                "branch operation before the block's last instruction",
            ));
        } else if n_branch > 1 {
            diags.push(Diagnostic::error(
                Rule::SpuriousBranchOp,
                Location::instr(bid32, i),
                format!("{n_branch} branch operations in one instruction"),
            ));
        }
    }

    if !has_branch_units {
        // Control flow is implicit (terminator descriptors only); there is
        // no operation to cross-check.
        return;
    }
    let last_branch = b.instrs.last().and_then(|i| i.branch_op());
    let expect = match b.term {
        TermKind::FallThrough => None,
        TermKind::Jump { target } => Some((Opcode::Goto, Some(target), Some(1000u16))),
        TermKind::Return => Some((Opcode::Return, None, Some(1000u16))),
        TermKind::CondBranch {
            taken,
            taken_permille,
        } => Some((Opcode::Br, Some(taken), Some(taken_permille))),
    };
    match (expect, last_branch) {
        (None, None) => {}
        (None, Some(op)) => diags.push(Diagnostic::error(
            Rule::SpuriousBranchOp,
            Location::instr(bid32, n.saturating_sub(1)),
            format!("fall-through block carries a {} operation", op.opcode),
        )),
        (Some(_), None) => diags.push(Diagnostic::error(
            Rule::MissingBranchOp,
            Location::block(bid32),
            "terminator transfers control but the last instruction has no branch operation",
        )),
        (Some((want_opc, want_target, want_permille)), Some(op)) => {
            let kind_ok = match want_opc {
                // Either conditional spelling matches a CondBranch.
                Opcode::Br => matches!(op.opcode, Opcode::Br | Opcode::Brf),
                other => op.opcode == other,
            };
            if !kind_ok {
                diags.push(Diagnostic::error(
                    Rule::BranchMismatch,
                    Location::instr(bid32, n - 1),
                    format!("terminator expects {want_opc}, operation is {}", op.opcode),
                ));
            }
            if let Some(info) = op.branch {
                if let Some(t) = want_target {
                    if info.target != t {
                        diags.push(Diagnostic::error(
                            Rule::BranchMismatch,
                            Location::instr(bid32, n - 1),
                            format!(
                                "operation targets block {}, terminator says {t}",
                                info.target
                            ),
                        ));
                    }
                }
                if let Some(p) = want_permille {
                    if info.taken_permille != p {
                        diags.push(Diagnostic::error(
                            Rule::BranchMismatch,
                            Location::instr(bid32, n - 1),
                            format!(
                                "operation taken probability {} permille, terminator says {p}",
                                info.taken_permille
                            ),
                        ));
                    }
                }
            }
            // A branch op without BranchInfo is reported by the bundle pass.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_isa::{BranchInfo, InstrBuilder, Operation};

    fn m() -> MachineConfig {
        MachineConfig::paper_baseline()
    }

    fn block(
        machine: &MachineConfig,
        term: TermKind,
        branch: Option<Opcode>,
    ) -> Vec<vliw_isa::VliwInstruction> {
        let mut b = InstrBuilder::new(machine);
        b.push(Operation::new(Opcode::Add, 0)).unwrap();
        if let Some(opc) = branch {
            let info = match term {
                TermKind::Jump { target } => BranchInfo {
                    taken_permille: 1000,
                    target,
                },
                TermKind::CondBranch {
                    taken,
                    taken_permille,
                } => BranchInfo {
                    taken_permille,
                    target: taken,
                },
                _ => BranchInfo {
                    taken_permille: 1000,
                    target: 0,
                },
            };
            b.push(Operation::new(opc, 0).with_branch(info)).unwrap();
        }
        vec![b.build()]
    }

    fn program(
        machine: &MachineConfig,
        blocks: Vec<(Vec<vliw_isa::VliwInstruction>, TermKind)>,
    ) -> Program {
        let _ = machine;
        Program::new("t".into(), blocks, 0, 0, vec![])
    }

    #[test]
    fn clean_two_block_loop() {
        let mach = m();
        let t0 = TermKind::CondBranch {
            taken: 0,
            taken_permille: 900,
        };
        let p = program(
            &mach,
            vec![
                (block(&mach, t0, Some(Opcode::Br)), t0),
                (
                    block(&mach, TermKind::Return, Some(Opcode::Return)),
                    TermKind::Return,
                ),
            ],
        );
        let mut d = Vec::new();
        assert!(check_structure(&mach, &p, &mut d));
        assert!(d.is_empty(), "{d:?}");
        let cfg = build_cfg(&p);
        assert_eq!(cfg.succs[0], vec![0, 1]);
        assert!(cfg.reachable.iter().all(|&r| r));
    }

    #[test]
    fn bad_target_and_mismatch_detected() {
        let mach = m();
        let t = TermKind::Jump { target: 9 };
        let p = program(&mach, vec![(block(&mach, t, Some(Opcode::Goto)), t)]);
        let mut d = Vec::new();
        check_structure(&mach, &p, &mut d);
        assert!(d.iter().any(|x| x.rule == Rule::BadTarget), "{d:?}");
    }

    #[test]
    fn missing_branch_op_detected() {
        let mach = m();
        let p = program(
            &mach,
            vec![(block(&mach, TermKind::Return, None), TermKind::Return)],
        );
        let mut d = Vec::new();
        check_structure(&mach, &p, &mut d);
        assert!(d.iter().any(|x| x.rule == Rule::MissingBranchOp), "{d:?}");
    }

    #[test]
    fn branchless_machine_expects_no_branch_ops() {
        let mach = MachineConfig::new(8, 2).unwrap();
        assert_eq!(mach.branch_clusters, 0);
        let p = program(
            &mach,
            vec![(block(&mach, TermKind::Return, None), TermKind::Return)],
        );
        let mut d = Vec::new();
        check_structure(&mach, &p, &mut d);
        assert!(d.is_empty(), "{d:?}");
    }
}
