//! Mutation harness: the analyzer must detect every injected defect.
//!
//! Five defect classes — a clobbered issue slot, an out-of-range branch
//! target, an undefined register read, a wrong-cluster operand, and an
//! invalid stream id — are injected into *real* compiled benchmark images
//! (random benchmark × geometry preset × injection site), and each case
//! asserts the corresponding rule fires with Error severity. Together with
//! the zero-diagnostics differential suite this pins both directions:
//! no false positives on shipped images, no false negatives on broken ones.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use vliw_analyze::{analyze_image, AnalyzeOptions, Rule, Severity};
use vliw_isa::{MachineSpec, Reg, VliwInstruction};
use vliw_workloads::BenchmarkImage;

type ImageMap = HashMap<(usize, usize), Arc<BenchmarkImage>>;

/// Compile (once) and clone a benchmark image for mutation.
fn image(bench: usize, preset: usize) -> BenchmarkImage {
    static CACHE: OnceLock<Mutex<ImageMap>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap();
    let entry = map.entry((bench, preset)).or_insert_with(|| {
        let spec = &vliw_workloads::all_benchmarks()[bench];
        let machine = MachineSpec::presets()[preset].config();
        Arc::new(vliw_workloads::build(spec, &machine).expect("shipped benchmarks compile"))
    });
    (**entry).clone()
}

/// Assert `rule` fires with Error severity on the mutated image.
fn assert_detected(img: &BenchmarkImage, rule: Rule, what: &str) {
    let report = analyze_image(img, AnalyzeOptions::default());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == rule && d.severity == Severity::Error),
        "{what} on {} must raise {}, got:\n{}",
        img.spec.name,
        rule.name(),
        report.render_text()
    );
}

/// All (block, instr) sites in traversal order, rotated by `pick` so the
/// injection site varies across cases.
fn sites(img: &BenchmarkImage, pick: usize) -> Vec<(usize, usize)> {
    let mut s: Vec<(usize, usize)> = img
        .program
        .blocks
        .iter()
        .enumerate()
        .flat_map(|(b, blk)| (0..blk.instrs.len()).map(move |i| (b, i)))
        .collect();
    let n = s.len();
    if n > 0 {
        s.rotate_left(pick % n);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Defect class 1: clobbered slot — two operations on one (cluster, slot).
    #[test]
    fn detects_clobbered_slot(bench in 0usize..12, preset in 0usize..4, pick in 0usize..1000) {
        let mut img = image(bench, preset);
        let Some(&(b, i)) = sites(&img, pick)
            .iter()
            .find(|&&(b, i)| img.program.blocks[b].instrs[i].n_ops() > 0)
        else { continue };
        let mut ops = img.program.blocks[b].instrs[i].ops().to_vec();
        // Duplicating an op reuses its (cluster, slot) exactly.
        ops.push(ops[0]);
        img.program.blocks[b].instrs[i] = VliwInstruction::from_ops_unchecked(ops);
        assert_detected(&img, Rule::DuplicateSlot, "clobbered slot");
    }

    // Defect class 2: branch target outside the program's block table.
    #[test]
    fn detects_out_of_range_target(bench in 0usize..12, preset in 0usize..4, pick in 0usize..1000) {
        let mut img = image(bench, preset);
        let nb = img.program.blocks.len() as u32;
        let n_blocks = img.program.blocks.len();
        let Some(b) = (0..n_blocks)
            .map(|k| (k + pick) % n_blocks)
            .find(|&b| matches!(
                img.program.blocks[b].term,
                vliw_compiler::TermKind::Jump { .. } | vliw_compiler::TermKind::CondBranch { .. }
            ))
        else { continue };
        let bad = nb + 7;
        // Corrupt the terminator *and* its branch operation consistently, so
        // the target check itself (not a mere descriptor/op mismatch) fires.
        match &mut img.program.blocks[b].term {
            vliw_compiler::TermKind::Jump { target }
            | vliw_compiler::TermKind::CondBranch { taken: target, .. } => *target = bad,
            _ => unreachable!(),
        }
        if let Some(instr) = img.program.blocks[b].instrs.last() {
            let mut ops = instr.ops().to_vec();
            for op in &mut ops {
                if let Some(info) = &mut op.branch {
                    info.target = bad;
                }
            }
            let n = img.program.blocks[b].instrs.len();
            img.program.blocks[b].instrs[n - 1] = VliwInstruction::from_ops_unchecked(ops);
        }
        assert_detected(&img, Rule::BadTarget, "out-of-range target");
    }

    // Defect class 3: a read of a register no path has written.
    #[test]
    fn detects_undefined_read(bench in 0usize..12, preset in 0usize..4, pick in 0usize..1000) {
        let mut img = image(bench, preset);
        let machine = img.machine.clone();
        let entry = img.program.entry as usize;
        // Registers certainly covered at instruction i of the entry block:
        // declared live-ins plus destinations of strictly earlier cycles.
        // Anything outside that superset is provably flagged.
        let live: Vec<Reg> = img.program.live_ins.clone();
        let block = &img.program.blocks[entry];
        let mut found = None;
        'scan: for i in 0..block.instrs.len() {
            let Some(pos) = block.instrs[i].ops().iter().position(|o| o.srcs[0].is_some())
            else { continue };
            let cluster = block.instrs[i].ops()[pos].cluster;
            let mut covered = vec![false; machine.regs_per_cluster as usize];
            for r in live.iter().filter(|r| r.cluster == cluster) {
                covered[r.index as usize] = true;
            }
            for earlier in &block.instrs[..i] {
                for op in earlier.ops() {
                    if let Some(d) = op.dest {
                        if d.cluster == cluster {
                            covered[d.index as usize] = true;
                        }
                    }
                }
            }
            let start = pick % machine.regs_per_cluster as usize;
            for k in 0..machine.regs_per_cluster as usize {
                let idx = (start + k) % machine.regs_per_cluster as usize;
                if !covered[idx] {
                    found = Some((i, pos, Reg::new(cluster, idx as u16)));
                    break 'scan;
                }
            }
        }
        let Some((i, pos, reg)) = found else { continue };
        let mut ops = img.program.blocks[entry].instrs[i].ops().to_vec();
        ops[pos].srcs[0] = Some(reg);
        img.program.blocks[entry].instrs[i] = VliwInstruction::from_ops_unchecked(ops);
        assert_detected(&img, Rule::UndefinedRead, "undefined read");
    }

    // Defect class 4: an operand living in another cluster's register file.
    #[test]
    fn detects_wrong_cluster_operand(bench in 0usize..12, preset in 0usize..4, pick in 0usize..1000) {
        let mut img = image(bench, preset);
        let nc = img.machine.n_clusters;
        let Some((b, i, pos, src)) = sites(&img, pick).iter().find_map(|&(b, i)| {
            img.program.blocks[b].instrs[i]
                .ops()
                .iter()
                .position(|o| o.srcs[0].is_some())
                .map(|pos| (b, i, pos, img.program.blocks[b].instrs[i].ops()[pos].srcs[0].unwrap()))
        }) else { continue };
        let mut ops = img.program.blocks[b].instrs[i].ops().to_vec();
        ops[pos].srcs[0] = Some(Reg::new((src.cluster + 1) % nc, src.index));
        img.program.blocks[b].instrs[i] = VliwInstruction::from_ops_unchecked(ops);
        assert_detected(&img, Rule::CrossClusterOperand, "wrong-cluster operand");
    }

    // Defect class 5: a memory op naming a stream the image does not have.
    #[test]
    fn detects_bad_stream_id(bench in 0usize..12, preset in 0usize..4, pick in 0usize..1000) {
        let mut img = image(bench, preset);
        let Some((b, i, pos)) = sites(&img, pick).iter().find_map(|&(b, i)| {
            img.program.blocks[b].instrs[i]
                .ops()
                .iter()
                .position(|o| o.mem.is_some())
                .map(|pos| (b, i, pos))
        }) else { continue };
        let mut ops = img.program.blocks[b].instrs[i].ops().to_vec();
        ops[pos].mem.as_mut().unwrap().stream = 500;
        img.program.blocks[b].instrs[i] = VliwInstruction::from_ops_unchecked(ops);
        assert_detected(&img, Rule::BadStream, "bad stream id");
    }
}
